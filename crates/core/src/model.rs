//! The end-to-end KRR profiler: one-pass MRC construction for K-LRU caches.
//!
//! [`KrrModel`] wires together the pieces of §4: the KRR stack with a
//! configurable update strategy, the `K′ = K^1.4` recency correction, the
//! SHARDS-style spatial sampling front-end, the optional byte-level
//! `sizeArray`, and the stack-distance histogram from which the MRC is read.

use crate::checkpoint::{CheckpointReader, CheckpointWriter, Dec, Enc, SECTION_MODEL};
use crate::histogram::SdHistogram;
use crate::metrics::MetricsRegistry;
use crate::mrc::Mrc;
use crate::obs::{Phase, ThreadRecorder, DEEP_CHAIN_THRESHOLD};
use crate::prob::k_prime;
use crate::sampling::SpatialFilter;
use crate::sizearray::SizeArray;
use crate::stack::KrrStack;
use crate::update::UpdaterKind;
use std::sync::Arc;

/// Granularity of stack distances.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SizeMode {
    /// Every object counts as one unit; MRC x-axis is object count.
    Uniform,
    /// Byte-level distances via a `sizeArray` with the given logarithmic
    /// base (§4.4.1); MRC x-axis is bytes.
    ByteLevel {
        /// Logarithmic base of the sizeArray (paper uses 2).
        base: u64,
    },
}

/// Configuration for a [`KrrModel`].
#[derive(Debug, Clone)]
pub struct KrrConfig {
    /// Sampling size `K` of the K-LRU cache being modeled.
    pub k: f64,
    /// Exponent of the K′ correction (§4.2); the model updates the stack
    /// with `K′ = K^kprime_exponent`. The paper found 1.4 accurate.
    pub kprime_exponent: f64,
    /// Disable to run the stack with raw `K` (used by the ablation bench).
    pub apply_kprime: bool,
    /// Stack update strategy.
    pub updater: UpdaterKind,
    /// Spatial sampling rate `R ∈ (0, 1]`; 1.0 disables sampling.
    pub sampling_rate: f64,
    /// Apply the SHARDS-adj count correction under spatial sampling
    /// (compensates hot-key sampling bias; default true).
    pub spatial_adjustment: bool,
    /// RNG seed for the stack updates.
    pub seed: u64,
    /// Distance granularity.
    pub size_mode: SizeMode,
    /// Histogram bin width in distance units (1 for exact object
    /// histograms; larger for byte histograms).
    pub bin_width: u64,
}

impl KrrConfig {
    /// Configuration modeling a K-LRU cache with sampling size `k`, with the
    /// paper's defaults: backward update, K′ correction on, no spatial
    /// sampling, uniform sizes.
    #[must_use]
    pub fn new(k: f64) -> Self {
        assert!(k >= 1.0, "sampling size must be >= 1");
        Self {
            k,
            kprime_exponent: 1.4,
            apply_kprime: true,
            updater: UpdaterKind::Backward,
            sampling_rate: 1.0,
            spatial_adjustment: true,
            seed: 0x5EED,
            size_mode: SizeMode::Uniform,
            bin_width: 1,
        }
    }

    /// Sets the stack update strategy.
    #[must_use]
    pub fn updater(mut self, updater: UpdaterKind) -> Self {
        self.updater = updater;
        self
    }

    /// Enables spatial sampling at rate `r`.
    #[must_use]
    pub fn sampling(mut self, r: f64) -> Self {
        self.sampling_rate = r;
        self
    }

    /// Sets the RNG seed.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Switches to byte-level distances with sizeArray base `base` and the
    /// given histogram bin width in bytes.
    #[must_use]
    pub fn byte_level(mut self, base: u64, bin_width: u64) -> Self {
        self.size_mode = SizeMode::ByteLevel { base };
        self.bin_width = bin_width;
        self
    }

    /// Disables the K′ correction (stack runs with raw `K`).
    #[must_use]
    pub fn raw_k(mut self) -> Self {
        self.apply_kprime = false;
        self
    }

    /// Overrides the K′ exponent.
    #[must_use]
    pub fn kprime_exponent(mut self, e: f64) -> Self {
        self.kprime_exponent = e;
        self
    }

    /// The effective sampling size the stack will use.
    #[must_use]
    pub fn effective_k(&self) -> f64 {
        if self.apply_kprime {
            k_prime(self.k, self.kprime_exponent)
        } else {
            self.k
        }
    }

    /// Serializes the configuration into a `krr-ckpt-v1` payload.
    pub fn save_state(&self, enc: &mut Enc) {
        enc.put_f64(self.k)
            .put_f64(self.kprime_exponent)
            .put_u8(u8::from(self.apply_kprime))
            .put_u8(self.updater.to_tag())
            .put_f64(self.sampling_rate)
            .put_u8(u8::from(self.spatial_adjustment))
            .put_u64(self.seed);
        match self.size_mode {
            SizeMode::Uniform => enc.put_u8(0).put_u64(0),
            SizeMode::ByteLevel { base } => enc.put_u8(1).put_u64(base),
        };
        enc.put_u64(self.bin_width);
    }

    /// Reconstructs a configuration from a [`KrrConfig::save_state`]
    /// payload.
    pub fn load_state(dec: &mut Dec<'_>) -> std::io::Result<Self> {
        let bad = |m: &str| std::io::Error::new(std::io::ErrorKind::InvalidData, m.to_string());
        let k = dec.f64()?;
        let kprime_exponent = dec.f64()?;
        let apply_kprime = dec.u8()? != 0;
        let updater = UpdaterKind::from_tag(dec.u8()?).ok_or_else(|| bad("unknown updater tag"))?;
        let sampling_rate = dec.f64()?;
        let spatial_adjustment = dec.u8()? != 0;
        let seed = dec.u64()?;
        let mode_tag = dec.u8()?;
        let base = dec.u64()?;
        let size_mode = match mode_tag {
            0 => SizeMode::Uniform,
            1 => SizeMode::ByteLevel { base },
            _ => return Err(bad("unknown size-mode tag")),
        };
        let bin_width = dec.u64()?;
        Ok(Self {
            k,
            kprime_exponent,
            apply_kprime,
            updater,
            sampling_rate,
            spatial_adjustment,
            seed,
            size_mode,
            bin_width,
        })
    }
}

/// Counters describing a completed (or in-progress) profiling run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ModelStats {
    /// References offered to the model.
    pub processed: u64,
    /// References admitted by the spatial filter.
    pub sampled: u64,
    /// Distinct sampled objects (stack length).
    pub distinct: u64,
}

fn krr_sizearray_bytes(sa: &SizeArray) -> usize {
    sa.memory_bytes()
}

/// One-pass K-LRU MRC profiler.
#[derive(Debug)]
pub struct KrrModel {
    config: KrrConfig,
    filter: SpatialFilter,
    stack: KrrStack,
    sizes: Option<SizeArray>,
    hist: SdHistogram,
    processed: u64,
    sampled: u64,
    // Deepest stack position any re-reference has hit — a transient
    // observability gauge (per-shard depth high-water mark), deliberately
    // not checkpointed.
    deepest_phi: u64,
    metrics: Option<Arc<MetricsRegistry>>,
    recorder: Option<ThreadRecorder>,
}

impl Clone for KrrModel {
    /// Clones the model state. The flight-recorder handle is NOT cloned
    /// (a ring has exactly one writer); the clone starts detached.
    fn clone(&self) -> Self {
        Self {
            config: self.config.clone(),
            filter: self.filter,
            stack: self.stack.clone(),
            sizes: self.sizes.clone(),
            hist: self.hist.clone(),
            processed: self.processed,
            sampled: self.sampled,
            deepest_phi: self.deepest_phi,
            metrics: self.metrics.clone(),
            recorder: None,
        }
    }
}

/// What happened to one reference inside [`KrrModel::access`]; feeds the
/// metrics layer without re-deriving state from the stack.
enum Outcome {
    Filtered,
    Hit,
    Cold,
}

impl KrrModel {
    /// Creates a profiler from a configuration.
    #[must_use]
    pub fn new(config: KrrConfig) -> Self {
        let filter = if config.sampling_rate >= 1.0 {
            SpatialFilter::all()
        } else {
            SpatialFilter::with_rate(config.sampling_rate)
        };
        let mut stack = KrrStack::new(config.effective_k(), config.updater, config.seed);
        let sizes = match config.size_mode {
            SizeMode::Uniform => None,
            SizeMode::ByteLevel { base } => Some(SizeArray::new(base)),
        };
        // Only the sizeArray reads per-chain pre-update sizes; skip
        // gathering them in uniform mode. Until metrics or a recorder is
        // attached nothing observes the chain itself either, so the stack
        // may use the fused backward update.
        stack.set_record_chain_sizes(sizes.is_some());
        stack.set_record_chain(sizes.is_some());
        let hist = SdHistogram::new(config.bin_width);
        Self {
            config,
            filter,
            stack,
            sizes,
            hist,
            processed: 0,
            sampled: 0,
            deepest_phi: 0,
            metrics: None,
            recorder: None,
        }
    }

    /// Attaches a metrics registry; subsequent accesses record into it.
    /// The default (detached) hot path costs one branch.
    pub fn set_metrics(&mut self, metrics: Arc<MetricsRegistry>) {
        // The chain_len metric observes chains; leave the fused path.
        self.stack.set_record_chain(true);
        self.metrics = Some(metrics);
    }

    /// The attached metrics registry, if any.
    #[must_use]
    pub fn metrics(&self) -> Option<&Arc<MetricsRegistry>> {
        self.metrics.as_ref()
    }

    /// Attaches a flight-recorder handle; subsequent stack updates record
    /// sampled [`Phase::StackUpdate`] spans (1 in 16) and unconditional
    /// [`Phase::DeepUpdate`] markers for swap chains reaching
    /// [`DEEP_CHAIN_THRESHOLD`]. Tracing observes the model without
    /// touching its state, RNG, or reference order — the MRC is
    /// bit-identical with or without a recorder. The default (detached)
    /// hot path costs one branch.
    pub fn set_recorder(&mut self, recorder: ThreadRecorder) {
        // Stack-update spans carry the chain length; leave the fused path.
        self.stack.set_record_chain(true);
        self.recorder = Some(recorder);
    }

    /// Detaches and returns the flight-recorder handle, if any.
    pub fn take_recorder(&mut self) -> Option<ThreadRecorder> {
        let rec = self.recorder.take();
        self.stack
            .set_record_chain(self.metrics.is_some() || self.sizes.is_some());
        rec
    }

    /// The configuration in use.
    #[must_use]
    pub fn config(&self) -> &KrrConfig {
        &self.config
    }

    /// Offers one reference to the model. `size` is the object size in
    /// bytes; pass 1 (or use [`KrrModel::access_key`]) for uniform-size
    /// workloads. Zero sizes are clamped to 1 byte.
    pub fn access(&mut self, key: u64, size: u32) {
        self.access_hashed(key, size, crate::hashing::hash_key(key));
    }

    /// [`KrrModel::access`] for a key whose [`crate::hashing::hash_key`]
    /// value is already known. The sharded router hashes each key once for
    /// routing and passes the hash through here, so the spatial filter does
    /// not hash a second time. `key_hash` MUST equal `hash_key(key)` —
    /// anything else silently corrupts the spatial sample.
    pub fn access_hashed(&mut self, key: u64, size: u32, key_hash: u64) {
        if self.metrics.is_none() && self.recorder.is_none() {
            self.access_inner(key, size, key_hash);
            return;
        }
        // Timing is sampled 1-in-64: the clock read costs about as much as
        // a shallow update itself, so timing every access would violate the
        // <=5% overhead budget the metrics layer is held to. Traced stack
        // updates are sampled 1-in-16 for the same reason — a span costs
        // two clock reads — with deep chains always marked (clock read
        // only on the rare deep path).
        let timed = self.metrics.is_some() && self.processed & 63 == 0;
        let t0 = timed.then(std::time::Instant::now);
        let traced = self.processed & 15 == 0;
        let r0 = if traced {
            self.recorder.as_ref().map(ThreadRecorder::now_ns)
        } else {
            None
        };
        let outcome = self.access_inner(key, size, key_hash);
        if let Some(m) = self.metrics.as_ref() {
            m.accesses.inc();
            match outcome {
                Outcome::Filtered => m.spatial_rejected.inc(),
                Outcome::Hit | Outcome::Cold => {
                    if matches!(outcome, Outcome::Hit) {
                        m.hits.inc();
                    } else {
                        m.cold_misses.inc();
                    }
                    m.chain_len.record(self.stack.last_chain().len() as u64);
                    m.positions_scanned.record(self.stack.last_scanned());
                }
            }
            if let Some(t0) = t0 {
                m.access_ns.record(t0.elapsed().as_nanos() as u64);
            }
        }
        if let Some(rec) = self.recorder.as_ref() {
            if !matches!(outcome, Outcome::Filtered) {
                let chain = self.stack.last_chain().len() as u64;
                if let Some(r0) = r0 {
                    rec.record_since(Phase::StackUpdate, r0, chain);
                } else if chain >= DEEP_CHAIN_THRESHOLD {
                    rec.mark(Phase::DeepUpdate, chain);
                }
            }
        }
    }

    /// Offers a batch of `(key, size, key_hash)` references — the batched
    /// pipeline hot path. Bit-identical to calling
    /// [`KrrModel::access_hashed`] per element in order: batching only
    /// restructures the admission filtering (8-wide branchless masks via
    /// [`SpatialFilter::admits_hashed8`], skipped entirely at rate 1.0),
    /// while stack accesses — the only RNG consumers — still happen one at
    /// a time in reference order. Falls back to the per-reference path
    /// whenever metrics, tracing, or byte-level mode need per-access
    /// bookkeeping.
    pub fn access_batch(&mut self, refs: &[(u64, u32, u64)]) {
        if self.metrics.is_some() || self.recorder.is_some() || self.sizes.is_some() {
            for &(key, size, key_hash) in refs {
                self.access_hashed(key, size, key_hash);
            }
            return;
        }
        self.processed += refs.len() as u64;
        if self.filter.admits_all() {
            self.sampled += refs.len() as u64;
            for &(key, _, _) in refs {
                self.touch_uniform(key);
            }
            return;
        }
        let mut chunks = refs.chunks_exact(8);
        for chunk in &mut chunks {
            let hashes: [u64; 8] = std::array::from_fn(|i| chunk[i].2);
            let mut mask = self.filter.admits_hashed8(&hashes);
            self.sampled += u64::from(mask.count_ones());
            // Drain set bits lowest-first: admitted references hit the
            // stack in their original order, preserving the RNG stream.
            while mask != 0 {
                let i = mask.trailing_zeros() as usize;
                mask &= mask - 1;
                self.touch_uniform(chunk[i].0);
            }
        }
        for &(key, _, key_hash) in chunks.remainder() {
            if self.filter.admits_hashed(key_hash) {
                self.sampled += 1;
                self.touch_uniform(key);
            }
        }
    }

    /// One admitted uniform-size stack access: the shared tail of the
    /// scalar and batched paths.
    #[inline]
    fn touch_uniform(&mut self, key: u64) -> Outcome {
        match self.stack.access(key, 1) {
            crate::stack::Access::Hit { phi } => {
                self.deepest_phi = self.deepest_phi.max(phi);
                self.hist.record(phi);
                Outcome::Hit
            }
            crate::stack::Access::Cold { .. } => {
                self.hist.record_cold();
                Outcome::Cold
            }
        }
    }

    fn access_inner(&mut self, key: u64, size: u32, key_hash: u64) -> Outcome {
        self.processed += 1;
        if !self.filter.admits_hashed(key_hash) {
            return Outcome::Filtered;
        }
        self.sampled += 1;
        let size = size.max(1);
        match self.sizes {
            None => self.touch_uniform(key),
            Some(ref mut sa) => {
                match self.stack.position_of(key) {
                    Some(phi) => {
                        self.deepest_phi = self.deepest_phi.max(phi);
                        // Byte distance reflects the cache state before this
                        // access, so compute it before any resize.
                        let d = sa.distance(phi).max(1);
                        let old = self.stack.entry_at(phi).expect("indexed entry").size;
                        sa.on_resize(phi, old, size);
                        self.stack.access(key, size);
                        sa.apply(
                            self.stack.last_chain(),
                            self.stack.last_chain_sizes(),
                            phi,
                            size,
                        );
                        self.hist.record(d);
                        Outcome::Hit
                    }
                    None => {
                        let acc = self.stack.access(key, size);
                        sa.on_insert(size);
                        sa.apply(
                            self.stack.last_chain(),
                            self.stack.last_chain_sizes(),
                            acc.phi(),
                            size,
                        );
                        self.hist.record_cold();
                        Outcome::Cold
                    }
                }
            }
        }
    }

    /// Offers a uniform-size reference.
    pub fn access_key(&mut self, key: u64) {
        self.access(key, 1);
    }

    /// The miss ratio curve observed so far. Cache sizes are objects (or
    /// bytes in byte-level mode); under spatial sampling the x-axis is
    /// already expanded by `1/R` to full-trace scale and the SHARDS-adj
    /// count correction is applied (unless disabled in the config).
    #[must_use]
    pub fn mrc(&self) -> Mrc {
        let rate = self.filter.rate();
        let mut mrc = if rate < 1.0 && self.config.spatial_adjustment {
            let mut hist = self.hist.clone();
            let expected = (self.processed as f64 * rate).round() as i64;
            hist.apply_count_adjustment(expected - self.sampled as i64);
            Mrc::from_histogram(&hist, self.filter.scale())
        } else {
            Mrc::from_histogram(&self.hist, self.filter.scale())
        };
        mrc.make_monotone();
        mrc
    }

    /// The raw stack-distance histogram (sampled space).
    #[must_use]
    pub fn histogram(&self) -> &SdHistogram {
        &self.hist
    }

    /// Run counters.
    #[must_use]
    pub fn stats(&self) -> ModelStats {
        ModelStats {
            processed: self.processed,
            sampled: self.sampled,
            distinct: self.stack.len() as u64,
        }
    }

    /// Effective sampling rate of the spatial filter.
    #[must_use]
    pub fn sampling_rate(&self) -> f64 {
        self.filter.rate()
    }

    /// Deepest stack position any re-reference has hit so far (0 before
    /// the first hit). Feeds the per-shard stack-depth high-water gauge;
    /// transient — not part of checkpoints, resets to 0 on restore.
    #[must_use]
    pub fn deepest_hit(&self) -> u64 {
        self.deepest_phi
    }

    /// Estimated heap footprint of the whole profiler in bytes: stack +
    /// key index + histogram + optional sizeArray (§5.6).
    #[must_use]
    pub fn memory_bytes(&self) -> usize {
        self.stack.memory_bytes()
            + self.hist.memory_bytes()
            + self.sizes.as_ref().map_or(0, krr_sizearray_bytes)
    }

    /// Serializes the full model state — config, spatial filter, stack
    /// (entries + RNG stream), optional sizeArray, histogram, and the
    /// processed/sampled counters — into a `krr-ckpt-v1` payload. Everything
    /// that influences future outputs is captured, so a restored model
    /// continues *bit-identically*: feeding it the remaining trace yields
    /// the same MRC as an uninterrupted run.
    pub fn save_state(&self, enc: &mut Enc) {
        self.config.save_state(enc);
        enc.put_u64(self.filter.threshold())
            .put_u64(self.filter.modulus());
        self.stack.save_state(enc);
        match &self.sizes {
            None => {
                enc.put_u8(0);
            }
            Some(sa) => {
                enc.put_u8(1);
                sa.save_state(enc);
            }
        }
        self.hist.save_state(enc);
        enc.put_u64(self.processed).put_u64(self.sampled);
    }

    /// Reconstructs a model from a [`KrrModel::save_state`] payload. The
    /// restored model starts with no metrics registry or flight recorder
    /// attached — re-attach them with [`KrrModel::set_metrics`] /
    /// [`KrrModel::set_recorder`] if observability should continue.
    pub fn load_state(dec: &mut Dec<'_>) -> std::io::Result<Self> {
        let config = KrrConfig::load_state(dec)?;
        let filter = SpatialFilter::new(dec.u64()?, dec.u64()?);
        let mut stack = KrrStack::load_state(dec)?;
        let sizes = match dec.u8()? {
            0 => None,
            _ => Some(SizeArray::load_state(dec)?),
        };
        stack.set_record_chain_sizes(sizes.is_some());
        stack.set_record_chain(sizes.is_some());
        let hist = SdHistogram::load_state(dec)?;
        let processed = dec.u64()?;
        let sampled = dec.u64()?;
        Ok(Self {
            config,
            filter,
            stack,
            sizes,
            hist,
            processed,
            sampled,
            deepest_phi: 0,
            metrics: None,
            recorder: None,
        })
    }

    /// Writes a standalone `krr-ckpt-v1` checkpoint (one `MODL` section) to
    /// `w`. See [`crate::checkpoint`] for the container format and
    /// [`KrrModel::save_state`] for what is captured.
    pub fn checkpoint<W: std::io::Write>(&self, w: W) -> std::io::Result<()> {
        let mut ckpt = CheckpointWriter::new();
        self.save_state(ckpt.section(SECTION_MODEL));
        ckpt.write_to(w)
    }

    /// Restores a model from a checkpoint written by
    /// [`KrrModel::checkpoint`], validating magic, version, and section
    /// CRCs.
    pub fn restore<R: std::io::Read>(r: R) -> std::io::Result<Self> {
        let ckpt = CheckpointReader::read_from(r)?;
        Self::load_state(&mut ckpt.require(SECTION_MODEL)?)
    }
}

impl crate::footprint::Footprint for KrrModel {
    /// Stack + key index + histogram + optional sizeArray — the same
    /// composition as [`KrrModel::memory_bytes`] but with the per-field
    /// breakdown the footprint gauges publish.
    fn footprint(&self) -> crate::footprint::FootprintReport {
        let mut r = self.stack.footprint();
        r.merge(&self.hist.footprint());
        if let Some(sa) = &self.sizes {
            r.merge(&sa.footprint());
        }
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Xoshiro256;

    #[test]
    fn effective_k_applies_correction() {
        let cfg = KrrConfig::new(4.0);
        assert!((cfg.effective_k() - 4f64.powf(1.4)).abs() < 1e-12);
        assert_eq!(KrrConfig::new(4.0).raw_k().effective_k(), 4.0);
        assert_eq!(KrrConfig::new(1.0).effective_k(), 1.0);
    }

    #[test]
    fn cyclic_scan_is_all_cold_then_all_hits_at_full_size() {
        let mut m = KrrModel::new(KrrConfig::new(4.0));
        for _ in 0..3 {
            for key in 0..500u64 {
                m.access_key(key);
            }
        }
        let stats = m.stats();
        assert_eq!(stats.processed, 1500);
        assert_eq!(stats.distinct, 500);
        let mrc = m.mrc();
        // A cache holding the whole working set misses only the 500 colds.
        let expect = 500.0 / 1500.0;
        assert!((mrc.eval(500.0) - expect).abs() < 1e-9);
        assert_eq!(mrc.eval(0.0), 1.0);
    }

    #[test]
    fn zipf_like_reuse_produces_decreasing_mrc() {
        let mut m = KrrModel::new(KrrConfig::new(8.0));
        let mut rng = Xoshiro256::seed_from_u64(4);
        for _ in 0..50_000 {
            // Squared-uniform skews toward small keys.
            let u = rng.unit();
            let key = (u * u * 1000.0) as u64;
            m.access_key(key);
        }
        let mrc = m.mrc();
        assert!(mrc.eval(10.0) > mrc.eval(100.0));
        assert!(mrc.eval(100.0) > mrc.eval(1000.0));
    }

    #[test]
    fn sampled_model_tracks_full_model() {
        let mut full = KrrModel::new(KrrConfig::new(4.0));
        let mut sampled = KrrModel::new(KrrConfig::new(4.0).sampling(0.05));
        let mut rng = Xoshiro256::seed_from_u64(77);
        let keys = 200_000u64;
        for _ in 0..400_000 {
            let u = rng.unit();
            let key = (u * u * keys as f64) as u64;
            full.access_key(key);
            sampled.access_key(key);
        }
        assert!(sampled.stats().sampled < full.stats().sampled / 10);
        let sizes = crate::mrc::even_sizes(keys as f64, 20);
        // ~7.5K sampled objects here; SHARDS error scales as 1/sqrt(n_s),
        // so allow a little more than the paper's 8K-object guard implies.
        let mae = full.mrc().mae(&sampled.mrc(), &sizes);
        assert!(mae < 0.04, "spatially sampled MRC deviates by {mae}");
    }

    #[test]
    fn byte_level_mode_records_byte_distances() {
        let mut m = KrrModel::new(KrrConfig::new(4.0).byte_level(2, 64));
        for key in 0..100u64 {
            m.access(key, 128);
        }
        for key in 0..100u64 {
            m.access(key, 128);
        }
        let mrc = m.mrc();
        // 100 cold + 100 hits at byte distance <= 12800.
        assert!((mrc.eval(12800.0) - 0.5).abs() < 1e-9);
        assert_eq!(mrc.eval(63.0), 1.0);
    }

    #[test]
    fn zero_size_clamped() {
        let mut m = KrrModel::new(KrrConfig::new(2.0).byte_level(2, 1));
        m.access(1, 0);
        m.access(1, 0);
        assert_eq!(m.histogram().total(), 2);
    }

    #[test]
    fn checkpoint_restore_is_bit_identical() {
        for cfg in [
            KrrConfig::new(4.0).sampling(0.5).seed(11),
            KrrConfig::new(8.0).byte_level(2, 64).seed(12),
        ] {
            let mut a = KrrModel::new(cfg);
            let mut rng = Xoshiro256::seed_from_u64(21);
            for _ in 0..20_000 {
                a.access(rng.below(2000), (rng.below(100) + 1) as u32);
            }
            let mut bytes = Vec::new();
            a.checkpoint(&mut bytes).unwrap();
            let mut b = KrrModel::restore(&bytes[..]).unwrap();
            for _ in 0..20_000 {
                let key = rng.below(2000);
                let size = (rng.below(100) + 1) as u32;
                a.access(key, size);
                b.access(key, size);
            }
            assert_eq!(a.stats(), b.stats());
            assert_eq!(a.mrc().points(), b.mrc().points());
        }
    }

    #[test]
    fn access_batch_matches_scalar_path() {
        // Both with and without spatial sampling, through ragged chunk
        // sizes (so the 8-wide body and the scalar remainder both run).
        for rate in [1.0, 0.3, 0.01] {
            let cfg = KrrConfig::new(5.0).sampling(rate).seed(9);
            let mut a = KrrModel::new(cfg.clone());
            let mut b = KrrModel::new(cfg);
            let mut rng = Xoshiro256::seed_from_u64(8);
            let refs: Vec<(u64, u32, u64)> = (0..10_013)
                .map(|_| {
                    let key = rng.below(700);
                    (key, 1u32, crate::hashing::hash_key(key))
                })
                .collect();
            for &(key, size, hash) in &refs {
                a.access_hashed(key, size, hash);
            }
            for chunk in refs.chunks(97) {
                b.access_batch(chunk);
            }
            assert_eq!(a.stats(), b.stats(), "rate {rate}");
            assert_eq!(a.mrc().points(), b.mrc().points(), "rate {rate}");
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed| {
            let mut m = KrrModel::new(KrrConfig::new(3.0).seed(seed));
            let mut rng = Xoshiro256::seed_from_u64(5);
            for _ in 0..20_000 {
                m.access_key(rng.below(1000));
            }
            m.mrc()
        };
        assert_eq!(run(1).points(), run(1).points());
    }
}
