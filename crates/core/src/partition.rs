//! MRC-driven memory partitioning — the cache-management application the
//! paper's introduction motivates (LAMA, ref. \[10\]; utility-based
//! partitioning, ref. \[20\]): given each tenant's miss ratio curve and a
//! total memory budget,
//! find the allocation minimizing the weighted total miss rate.
//!
//! Two allocators:
//!
//! * [`allocate_greedy`] — marginal-gain hill climbing in fixed quanta
//!   (LAMA's scheme). Optimal when every MRC is convex; near-optimal and
//!   fast in practice.
//! * [`allocate_optimal`] — exact dynamic program over quantized sizes,
//!   O(tenants × budget² / quantum²); the reference the greedy is tested
//!   against.

use crate::mrc::Mrc;

/// One tenant's demand curve.
#[derive(Debug, Clone)]
pub struct Tenant {
    /// Display name.
    pub name: String,
    /// The tenant's miss ratio curve (from a [`crate::KrrModel`], a
    /// simulation, or any other source).
    pub mrc: Mrc,
    /// Requests per unit time (weights the miss *rate*).
    pub request_rate: f64,
}

impl Tenant {
    /// Convenience constructor.
    #[must_use]
    pub fn new(name: impl Into<String>, mrc: Mrc, request_rate: f64) -> Self {
        Self {
            name: name.into(),
            mrc,
            request_rate,
        }
    }

    /// Expected misses per unit time at the given allocation.
    #[must_use]
    pub fn miss_rate(&self, alloc: u64) -> f64 {
        self.request_rate * self.mrc.eval(alloc as f64)
    }
}

/// Result of a partitioning run.
#[derive(Debug, Clone, PartialEq)]
pub struct Allocation {
    /// Per-tenant allocation, same order as the input.
    pub per_tenant: Vec<u64>,
    /// Total expected misses per unit time.
    pub total_miss_rate: f64,
}

fn total_miss_rate(tenants: &[Tenant], alloc: &[u64]) -> f64 {
    tenants
        .iter()
        .zip(alloc)
        .map(|(t, &a)| t.miss_rate(a))
        .sum()
}

/// Greedy marginal-gain allocation: repeatedly grant one `quantum` to the
/// tenant whose miss rate drops the most (ties go to the lower index).
///
/// # Panics
/// If `quantum` is zero or there are no tenants.
#[must_use]
pub fn allocate_greedy(tenants: &[Tenant], budget: u64, quantum: u64) -> Allocation {
    assert!(quantum > 0, "quantum must be positive");
    assert!(!tenants.is_empty(), "need at least one tenant");
    let mut alloc = vec![0u64; tenants.len()];
    let mut remaining = budget;
    while remaining >= quantum {
        let mut best: Option<(usize, f64)> = None;
        for (i, t) in tenants.iter().enumerate() {
            let gain = t.miss_rate(alloc[i]) - t.miss_rate(alloc[i] + quantum);
            match best {
                Some((_, g)) if g >= gain => {}
                _ => best = Some((i, gain)),
            }
        }
        let (i, gain) = best.expect("at least one tenant");
        if gain <= 0.0 {
            // No tenant benefits from more memory; stop early.
            break;
        }
        alloc[i] += quantum;
        remaining -= quantum;
    }
    Allocation {
        total_miss_rate: total_miss_rate(tenants, &alloc),
        per_tenant: alloc,
    }
}

/// Exact allocation by dynamic programming over multiples of `quantum`.
///
/// # Panics
/// If `quantum` is zero or there are no tenants.
#[must_use]
pub fn allocate_optimal(tenants: &[Tenant], budget: u64, quantum: u64) -> Allocation {
    assert!(quantum > 0, "quantum must be positive");
    assert!(!tenants.is_empty(), "need at least one tenant");
    let slots = (budget / quantum) as usize;
    // dp[j] = best total miss rate using the prefix of tenants with j slots.
    let mut dp = vec![0.0f64; slots + 1];
    let mut choice: Vec<Vec<usize>> = Vec::with_capacity(tenants.len());
    for (i, t) in tenants.iter().enumerate() {
        let mut next = vec![f64::INFINITY; slots + 1];
        let mut pick = vec![0usize; slots + 1];
        for j in 0..=slots {
            for give in 0..=j {
                let prev = if i == 0 {
                    if give == j {
                        0.0
                    } else {
                        continue;
                    }
                } else {
                    dp[j - give]
                };
                let cost = prev + t.miss_rate(give as u64 * quantum);
                if cost < next[j] {
                    next[j] = cost;
                    pick[j] = give;
                }
            }
        }
        dp = next;
        choice.push(pick);
    }
    // Backtrack.
    let mut alloc = vec![0u64; tenants.len()];
    let mut j = slots;
    for i in (0..tenants.len()).rev() {
        let give = choice[i][j];
        alloc[i] = give as u64 * quantum;
        j -= give;
    }
    Allocation {
        total_miss_rate: total_miss_rate(tenants, &alloc),
        per_tenant: alloc,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn linear_mrc(max: f64) -> Mrc {
        Mrc::from_points(vec![(0.0, 1.0), (max, 0.0)])
    }

    fn cliff_mrc(at: f64) -> Mrc {
        Mrc::from_points(vec![(0.0, 1.0), (at - 1.0, 1.0), (at, 0.05)])
    }

    #[test]
    fn single_tenant_gets_everything_useful() {
        let t = vec![Tenant::new("a", linear_mrc(100.0), 1.0)];
        let a = allocate_greedy(&t, 200, 10);
        assert_eq!(a.per_tenant[0], 100, "stops once the curve is flat");
        assert!(a.total_miss_rate < 1e-9);
    }

    #[test]
    fn hot_tenant_wins_memory() {
        // Same curves, 10x request rate difference: the hot tenant should
        // get at least as much as the cold one.
        let t = vec![
            Tenant::new("hot", linear_mrc(100.0), 10.0),
            Tenant::new("cold", linear_mrc(100.0), 1.0),
        ];
        let a = allocate_greedy(&t, 100, 5);
        assert!(a.per_tenant[0] >= a.per_tenant[1]);
        assert!(a.per_tenant[0] >= 50);
    }

    #[test]
    fn greedy_matches_dp_on_convex_curves() {
        let t = vec![
            Tenant::new("a", linear_mrc(80.0), 3.0),
            Tenant::new("b", linear_mrc(160.0), 1.0),
            Tenant::new("c", linear_mrc(40.0), 2.0),
        ];
        let g = allocate_greedy(&t, 120, 4);
        let o = allocate_optimal(&t, 120, 4);
        assert!(
            g.total_miss_rate <= o.total_miss_rate + 1e-9,
            "greedy {} vs optimal {}",
            g.total_miss_rate,
            o.total_miss_rate
        );
    }

    #[test]
    fn dp_beats_greedy_on_cliffs() {
        // Cliff curves are non-convex: the greedy can strand memory below a
        // cliff while the DP jumps straight to it.
        let t = vec![
            Tenant::new("cliff", cliff_mrc(60.0), 1.0),
            Tenant::new("linear", linear_mrc(200.0), 0.5),
        ];
        let g = allocate_greedy(&t, 80, 10);
        let o = allocate_optimal(&t, 80, 10);
        assert!(o.total_miss_rate <= g.total_miss_rate + 1e-9);
        // The DP must fund the cliff tenant past its cliff.
        assert!(o.per_tenant[0] >= 60);
    }

    #[test]
    fn dp_respects_budget_exactly() {
        let t = vec![
            Tenant::new("a", cliff_mrc(50.0), 1.0),
            Tenant::new("b", cliff_mrc(70.0), 1.0),
            Tenant::new("c", linear_mrc(300.0), 1.0),
        ];
        for budget in [0u64, 30, 60, 120, 400] {
            let o = allocate_optimal(&t, budget, 10);
            assert!(o.per_tenant.iter().sum::<u64>() <= budget);
            let g = allocate_greedy(&t, budget, 10);
            assert!(g.per_tenant.iter().sum::<u64>() <= budget);
        }
    }

    #[test]
    fn zero_budget() {
        let t = vec![Tenant::new("a", linear_mrc(10.0), 2.0)];
        let a = allocate_greedy(&t, 0, 5);
        assert_eq!(a.per_tenant, vec![0]);
        assert!((a.total_miss_rate - 2.0).abs() < 1e-12);
    }
}
