//! `krr doctor`: the PERFORMANCE.md counter-signature playbook as
//! machine-checked rules.
//!
//! docs/PERFORMANCE.md §"Reading the counters" tabulates how an operator
//! reads a `krr-metrics-v1` snapshot — *stalls growing + router parks
//! growing ⇒ model-bound ⇒ more threads*, and so on. This module executes
//! that table: [`DoctorCounters`] carries the counters the playbook keys
//! on (extracted from a live `/metrics?format=json` scrape, an offline
//! `--metrics-out` file, or a committed `BENCH_pipeline.json`),
//! [`diagnose`] runs the rules, and the result renders as text or as a
//! `krr-doctor-v1` JSON report — each [`Finding`] names the signature,
//! the evidence counters, and the knob to turn. Exemplar-ring statistics
//! ([`ExemplarStats`]) extend the playbook with tail-attribution rules
//! the counters alone can't express (e.g. most tail requests overlapped a
//! `/metrics` scrape).
//!
//! The same module backs the CI artifact gate: [`validate_artifact`]
//! checks any committed `BENCH_*.json` / `krr-*-v1` document against the
//! required keys of its (grow-only) schema, catching hand-edited or stale
//! files.
//!
//! ```
//! use krr_core::doctor::{diagnose, DoctorCounters};
//!
//! let healthy = DoctorCounters::default();
//! let report = diagnose(&healthy);
//! assert_eq!(report.findings.len(), 1);
//! assert_eq!(report.findings[0].id, "healthy");
//! ```

use crate::json::Json;

/// Exemplar-ring statistics joined into a diagnosis (from a live
/// `/exemplars` scrape or an offline `krr-exemplars-v1` dump).
#[derive(Debug, Clone, Copy, Default)]
pub struct ExemplarStats {
    /// Exemplars inspected.
    pub total: u64,
    /// How many carried `scrape_in_progress = true`.
    pub scrape_flagged: u64,
    /// Exemplars lost to ring overwrite.
    pub dropped: u64,
}

/// The counters the playbook rules key on. Every field defaults to the
/// healthy value, so fixtures only set what a rule should see.
#[derive(Debug, Clone, Default)]
pub struct DoctorCounters {
    /// `pipeline.stalls` — router pushes that found every ring slot full.
    pub stalls: u64,
    /// `pipeline.batches`.
    pub batches: u64,
    /// `pipeline.ring.router_parks`.
    pub router_parks: u64,
    /// `pipeline.ring.worker_parks`.
    pub worker_parks: u64,
    /// `pipeline.ring.depth_hwm` — per-worker ring high-water marks.
    pub ring_depth_hwm: Vec<u64>,
    /// `shards.accesses` — per-shard access counts.
    pub shard_accesses: Vec<u64>,
    /// `watchdog.drift_events`.
    pub drift_events: u64,
    /// `watchdog.mae_ppm`.
    pub mae_ppm: u64,
    /// Configured ring slots per worker, when known (`queue_depth`); used
    /// to tell "high-water mark pinned at the credit limit" precisely.
    /// `None` falls back to a uniform-saturation heuristic.
    pub queue_depth_slots: Option<u64>,
    /// Exemplar-ring statistics, when an exemplar source is joined.
    pub exemplars: Option<ExemplarStats>,
    /// Profiler sample-ring losses, when a profiler source is joined.
    pub profiler_dropped: Option<u64>,
}

impl DoctorCounters {
    /// Extracts the playbook counters from a parsed `krr-metrics-v1`
    /// document (the dotted paths locked in by the golden-schema test).
    #[must_use]
    pub fn from_metrics_json(doc: &Json) -> DoctorCounters {
        let num = |path: &[&str]| doc.path(path).and_then(Json::as_num).unwrap_or(0.0) as u64;
        let arr = |path: &[&str]| {
            doc.path(path)
                .and_then(Json::as_arr)
                .map(|a| {
                    a.iter()
                        .filter_map(Json::as_num)
                        .map(|n| n as u64)
                        .collect()
                })
                .unwrap_or_default()
        };
        DoctorCounters {
            stalls: num(&["pipeline", "stalls"]),
            batches: num(&["pipeline", "batches"]),
            router_parks: num(&["pipeline", "ring", "router_parks"]),
            worker_parks: num(&["pipeline", "ring", "worker_parks"]),
            ring_depth_hwm: arr(&["pipeline", "ring", "depth_hwm"]),
            shard_accesses: arr(&["shards", "accesses"]),
            drift_events: num(&["watchdog", "drift_events"]),
            mae_ppm: num(&["watchdog", "mae_ppm"]),
            queue_depth_slots: None,
            exemplars: None,
            profiler_dropped: None,
        }
    }

    /// Extracts the counters from a committed `BENCH_pipeline.json`
    /// (`krr-bench-pipeline-v2`): the `ring_t8` block snapshots the ring
    /// health counters at the 8-thread tuning.
    #[must_use]
    pub fn from_bench_pipeline(doc: &Json) -> DoctorCounters {
        let ring = doc.get("ring_t8");
        let num = |key: &str| {
            ring.and_then(|r| r.get(key))
                .and_then(Json::as_num)
                .unwrap_or(0.0) as u64
        };
        DoctorCounters {
            stalls: num("stalls"),
            batches: num("batches"),
            router_parks: num("router_parks"),
            worker_parks: num("worker_parks"),
            ring_depth_hwm: ring
                .and_then(|r| r.get("depth_hwm"))
                .and_then(Json::as_arr)
                .map(|a| {
                    a.iter()
                        .filter_map(Json::as_num)
                        .map(|n| n as u64)
                        .collect()
                })
                .unwrap_or_default(),
            ..DoctorCounters::default()
        }
    }

    /// Joins exemplar statistics from a parsed `krr-exemplars-v1` dump.
    pub fn join_exemplars(&mut self, doc: &Json) {
        let flagged = doc
            .get("exemplars")
            .and_then(Json::as_arr)
            .map(|a| {
                a.iter()
                    .filter(|e| e.get("scrape_in_progress") == Some(&Json::Bool(true)))
                    .count() as u64
            })
            .unwrap_or(0);
        let total = doc
            .get("exemplars")
            .and_then(Json::as_arr)
            .map_or(0, |a| a.len() as u64);
        self.exemplars = Some(ExemplarStats {
            total,
            scrape_flagged: flagged,
            dropped: doc.get("dropped").and_then(Json::as_num).unwrap_or(0.0) as u64,
        });
    }
}

/// One diagnosis: a playbook signature that matched.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Stable rule id (`healthy`, `model_bound`, `router_bound`,
    /// `queue_saturated`, `key_skew`, `watchdog_drift`, `scrape_tail`,
    /// `forensics_loss`).
    pub id: &'static str,
    /// `ok` / `warn`.
    pub severity: &'static str,
    /// The matched signature, in the playbook's words.
    pub finding: String,
    /// The counters that triggered the rule, name → value.
    pub evidence: Vec<(String, u64)>,
    /// The knob to turn (the playbook's "response" column).
    pub suggestion: String,
}

/// A full diagnosis report (`krr-doctor-v1`).
#[derive(Debug, Clone, Default)]
pub struct DoctorReport {
    /// Findings in rule order; never empty after [`diagnose`] (a run with
    /// no matched warning signature yields the `healthy` finding).
    pub findings: Vec<Finding>,
}

impl DoctorReport {
    /// Renders the report as a `krr-doctor-v1` JSON document.
    #[must_use]
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::from("{\"schema\":\"krr-doctor-v1\",\"findings\":[");
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "{{\"id\":\"{}\",\"severity\":\"{}\",\"finding\":{},\"evidence\":{{",
                f.id,
                f.severity,
                crate::obs::json_string(&f.finding),
            );
            for (j, (k, v)) in f.evidence.iter().enumerate() {
                if j > 0 {
                    s.push(',');
                }
                let _ = write!(s, "{}:{v}", crate::obs::json_string(k));
            }
            let _ = write!(
                s,
                "}},\"suggestion\":{}}}",
                crate::obs::json_string(&f.suggestion)
            );
        }
        s.push_str("]}");
        s
    }

    /// Renders the report as operator-facing text.
    #[must_use]
    pub fn render_text(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        for f in &self.findings {
            let _ = writeln!(s, "[{}] {}: {}", f.severity, f.id, f.finding);
            let ev: Vec<String> = f.evidence.iter().map(|(k, v)| format!("{k}={v}")).collect();
            let _ = writeln!(s, "  evidence: {}", ev.join(", "));
            let _ = writeln!(s, "  suggestion: {}", f.suggestion);
        }
        s
    }

    /// Whether any warning-level finding matched.
    #[must_use]
    pub fn has_warnings(&self) -> bool {
        self.findings.iter().any(|f| f.severity == "warn")
    }
}

fn ev(pairs: &[(&str, u64)]) -> Vec<(String, u64)> {
    pairs.iter().map(|(k, v)| ((*k).to_string(), *v)).collect()
}

/// Runs the playbook rules over the counters. Deterministic: same
/// counters, same findings, in the same order.
#[must_use]
pub fn diagnose(c: &DoctorCounters) -> DoctorReport {
    let mut findings = Vec::new();
    let depth_max = c.ring_depth_hwm.iter().copied().max().unwrap_or(0);
    let depth_min = c.ring_depth_hwm.iter().copied().min().unwrap_or(0);

    // Playbook row 2: stalls growing, router_parks growing — workers
    // can't drain their rings.
    if c.stalls > 0 && c.router_parks > 0 {
        findings.push(Finding {
            id: "model_bound",
            severity: "warn",
            finding: "workers can't drain their rings — the model is the bottleneck".into(),
            evidence: ev(&[("stalls", c.stalls), ("router_parks", c.router_parks)]),
            suggestion:
                "more threads (until ≈ shards), or accept: throughput is already model-bound"
                    .into(),
        });
    }

    // Playbook row 3: worker_parks huge, depth_hwm ≈ 1 — router-bound.
    if c.worker_parks > c.batches.max(1) && depth_max <= 1 {
        findings.push(Finding {
            id: "router_bound",
            severity: "warn",
            finding: "router-bound: workers starve (parks exceed batches, rings never fill)".into(),
            evidence: ev(&[
                ("worker_parks", c.worker_parks),
                ("batches", c.batches),
                ("depth_hwm_max", depth_max),
            ]),
            suggestion: "raise batch_size; check the trace source (slow decompression? cold NFS?)"
                .into(),
        });
    }

    // Playbook row 4: depth_hwm pinned at queue_depth with stalls —
    // credit limit actually reached.
    let pinned = match c.queue_depth_slots {
        Some(slots) => slots > 0 && depth_max >= slots,
        None => !c.ring_depth_hwm.is_empty() && depth_min == depth_max && depth_max >= 4,
    };
    if pinned && c.stalls > 0 {
        findings.push(Finding {
            id: "queue_saturated",
            severity: "warn",
            finding: "ring high-water mark pinned at the credit limit with router stalls".into(),
            evidence: ev(&[
                ("depth_hwm_max", depth_max),
                ("queue_depth", c.queue_depth_slots.unwrap_or(depth_max)),
                ("stalls", c.stalls),
            ]),
            suggestion: "raise queue_depth".into(),
        });
    }

    // Playbook row 5: one shard's accesses ≫ others — key skew. The hot
    // shard is compared against the mean of the *other* shards (a mean
    // including the hot shard itself would mask extreme skew).
    let total: u64 = c.shard_accesses.iter().sum();
    let hot = c.shard_accesses.iter().copied().max().unwrap_or(0);
    if c.shard_accesses.len() >= 2 && total > 0 {
        let mean = (total - hot) / (c.shard_accesses.len() as u64 - 1);
        if hot >= mean.saturating_mul(4) && hot >= 16 {
            findings.push(Finding {
                id: "key_skew",
                severity: "warn",
                finding: "key skew concentrates work in one shard's worker".into(),
                evidence: ev(&[("hot_shard_accesses", hot), ("mean_shard_accesses", mean)]),
                suggestion:
                    "more shards spreads the hot keys; threads beyond the hot shard's owner won't help"
                        .into(),
            });
        }
    }

    // Accuracy watchdog fired: the model drifted from the Olken shadow.
    if c.drift_events > 0 {
        findings.push(Finding {
            id: "watchdog_drift",
            severity: "warn",
            finding: "accuracy watchdog reported drift against the Olken shadow".into(),
            evidence: ev(&[("drift_events", c.drift_events), ("mae_ppm", c.mae_ppm)]),
            suggestion: "check for workload shift; consider a larger K or re-seeding the model"
                .into(),
        });
    }

    // Exemplar-derived: most tail requests overlapped a /metrics scrape.
    if let Some(ex) = c.exemplars {
        if ex.total >= 4 && ex.scrape_flagged * 2 > ex.total {
            findings.push(Finding {
                id: "scrape_tail",
                severity: "warn",
                finding: "most tail exemplars overlapped an in-flight /metrics scrape".into(),
                evidence: ev(&[
                    ("exemplars", ex.total),
                    ("scrape_flagged", ex.scrape_flagged),
                ]),
                suggestion: "lower the scrape rate or scrape a replica; see BENCH_load ab gate"
                    .into(),
            });
        }
    }

    // Forensics self-check: overwrite-oldest loss in the exemplar or
    // profiler rings (informational — data is sampled, not wrong).
    let ex_dropped = c.exemplars.map_or(0, |e| e.dropped);
    let prof_dropped = c.profiler_dropped.unwrap_or(0);
    if ex_dropped > 0 || prof_dropped > 0 {
        findings.push(Finding {
            id: "forensics_loss",
            severity: "ok",
            finding: "exemplar/profiler rings overwrote old entries (bounded-memory loss)".into(),
            evidence: ev(&[
                ("exemplar_dropped", ex_dropped),
                ("profiler_dropped", prof_dropped),
            ]),
            suggestion: "raise the ring capacity if forensic history matters more than memory"
                .into(),
        });
    }

    // Playbook row 1: nothing matched and the router never waited.
    if !findings.iter().any(|f| f.severity == "warn") {
        findings.insert(
            0,
            Finding {
                id: "healthy",
                severity: "ok",
                finding: "router never waits, workers nap while the router reads the trace".into(),
                evidence: ev(&[
                    ("stalls", c.stalls),
                    ("router_parks", c.router_parks),
                    ("worker_parks", c.worker_parks),
                ]),
                suggestion: "nothing to do".into(),
            },
        );
    }

    DoctorReport { findings }
}

/// Required top-level keys per known grow-only schema tag. Grow-only
/// means committed artifacts may add keys but never lose these.
const ARTIFACT_SCHEMAS: &[(&str, &[&str])] = &[
    (
        "krr-metrics-v1",
        &["model", "pipeline", "shards", "updater"],
    ),
    ("krr-stats-v1", &["row", "refs", "delta"]),
    (
        "krr-exemplars-v1",
        &[
            "capacity",
            "captured",
            "dropped",
            "threshold_ns",
            "exemplars",
        ],
    ),
    ("krr-doctor-v1", &["findings"]),
    (
        "krr-load-v1",
        &["requests", "latency_ns", "phases", "arrival"],
    ),
    (
        "krr-bench-pipeline-v2",
        &["results", "gate", "ring_t8", "keys_hashed"],
    ),
    (
        "krr-bench-obs-v1",
        &["refs", "overhead_pct", "overhead_limit_pct"],
    ),
    (
        "krr-bench-space-v1",
        &["krr_bytes", "olken_bytes", "scrape_overhead_pct"],
    ),
    (
        "krr-bench-fleet-v1",
        &["tenants", "scrape_overhead_pct", "footprint_worst_ratio"],
    ),
    (
        "krr-bench-doctor-v1",
        &[
            "requests",
            "p99_baseline_ns",
            "p99_forensics_ns",
            "overhead_pct",
            "overhead_limit_pct",
        ],
    ),
];

/// Validates a parsed artifact against its declared grow-only schema.
/// Accepts a top-level `"schema"` tag or a Chrome-trace
/// `otherData.schema` tag. Returns the schema name on success.
///
/// # Errors
///
/// Rejects documents with no schema tag, an unknown tag, or a missing
/// required key — the CI signal for a hand-edited or stale artifact.
pub fn validate_artifact(doc: &Json) -> Result<String, String> {
    let (tag, body) = if let Some(Json::Str(s)) = doc.get("schema") {
        (s.clone(), doc)
    } else if let Some(Json::Str(s)) = doc.path(&["otherData", "schema"]) {
        // Chrome traces carry their tag in the trailer; the required
        // shape is the traceEvents array itself.
        return if s == "krr-trace-v1" {
            if doc.get("traceEvents").and_then(Json::as_arr).is_some() {
                Ok(s.clone())
            } else {
                Err("krr-trace-v1: missing traceEvents array".into())
            }
        } else {
            Err(format!("unknown trace schema tag {s:?}"))
        };
    } else {
        return Err("no schema tag (expected top-level \"schema\")".into());
    };
    let Some((_, required)) = ARTIFACT_SCHEMAS.iter().find(|(name, _)| *name == tag) else {
        return Err(format!("unknown schema tag {tag:?}"));
    };
    for key in *required {
        if body.get(key).is_none() {
            return Err(format!("{tag}: missing required key {key:?}"));
        }
    }
    Ok(tag)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;

    #[test]
    fn healthy_counters_yield_the_healthy_finding() {
        let report = diagnose(&DoctorCounters {
            batches: 100,
            worker_parks: 12,
            ring_depth_hwm: vec![2, 3],
            shard_accesses: vec![100, 120, 110, 90],
            ..DoctorCounters::default()
        });
        assert_eq!(report.findings.len(), 1);
        assert_eq!(report.findings[0].id, "healthy");
        assert!(!report.has_warnings());
    }

    #[test]
    fn model_bound_signature_matches_playbook_row() {
        let report = diagnose(&DoctorCounters {
            stalls: 500,
            router_parks: 300,
            batches: 100,
            ..DoctorCounters::default()
        });
        assert!(report.findings.iter().any(|f| f.id == "model_bound"));
        assert!(report.has_warnings());
    }

    #[test]
    fn router_bound_needs_starving_workers_and_empty_rings() {
        let report = diagnose(&DoctorCounters {
            batches: 10,
            worker_parks: 5_000,
            ring_depth_hwm: vec![1, 1, 0, 1],
            ..DoctorCounters::default()
        });
        let f = report
            .findings
            .iter()
            .find(|f| f.id == "router_bound")
            .unwrap();
        assert!(f.suggestion.contains("batch_size"));
        // Same parks with deep rings is NOT router-bound.
        let report = diagnose(&DoctorCounters {
            batches: 10,
            worker_parks: 5_000,
            ring_depth_hwm: vec![4, 4],
            ..DoctorCounters::default()
        });
        assert!(report.findings.iter().all(|f| f.id != "router_bound"));
    }

    #[test]
    fn queue_saturation_uses_the_config_hint() {
        let report = diagnose(&DoctorCounters {
            stalls: 7,
            ring_depth_hwm: vec![4, 4, 4],
            queue_depth_slots: Some(4),
            ..DoctorCounters::default()
        });
        let f = report
            .findings
            .iter()
            .find(|f| f.id == "queue_saturated")
            .unwrap();
        assert_eq!(f.suggestion, "raise queue_depth");
    }

    #[test]
    fn key_skew_fires_on_a_hot_shard() {
        let report = diagnose(&DoctorCounters {
            shard_accesses: vec![10_000, 100, 120, 90],
            ..DoctorCounters::default()
        });
        assert!(report.findings.iter().any(|f| f.id == "key_skew"));
    }

    #[test]
    fn scrape_tail_fires_when_most_exemplars_overlap_a_scrape() {
        let c = DoctorCounters {
            exemplars: Some(ExemplarStats {
                total: 10,
                scrape_flagged: 8,
                dropped: 0,
            }),
            ..DoctorCounters::default()
        };
        let report = diagnose(&c);
        assert!(report.findings.iter().any(|f| f.id == "scrape_tail"));
    }

    #[test]
    fn counters_parse_from_metrics_json_paths() {
        let doc = parse(
            r#"{"schema":"krr-metrics-v1",
                "pipeline":{"stalls":3,"batches":9,"ring":{"router_parks":2,"worker_parks":5,"depth_hwm":[1,2]}},
                "shards":{"accesses":[7,8]},
                "watchdog":{"drift_events":1,"mae_ppm":250}}"#,
        )
        .unwrap();
        let c = DoctorCounters::from_metrics_json(&doc);
        assert_eq!(c.stalls, 3);
        assert_eq!(c.batches, 9);
        assert_eq!(c.router_parks, 2);
        assert_eq!(c.worker_parks, 5);
        assert_eq!(c.ring_depth_hwm, vec![1, 2]);
        assert_eq!(c.shard_accesses, vec![7, 8]);
        assert_eq!(c.drift_events, 1);
        assert_eq!(c.mae_ppm, 250);
    }

    #[test]
    fn report_json_is_parseable_and_tagged() {
        let report = diagnose(&DoctorCounters {
            stalls: 1,
            router_parks: 1,
            ..DoctorCounters::default()
        });
        let doc = parse(&report.to_json()).unwrap();
        assert_eq!(validate_artifact(&doc).unwrap(), "krr-doctor-v1");
        let findings = doc.get("findings").and_then(Json::as_arr).unwrap();
        assert_eq!(
            findings[0].get("id").and_then(Json::as_str),
            Some("model_bound")
        );
        assert!(findings[0].path(&["evidence", "stalls"]).is_some());
    }

    #[test]
    fn artifact_validator_accepts_known_and_rejects_edited() {
        let ok = parse(
            r#"{"schema":"krr-bench-obs-v1","refs":1,"overhead_pct":0.1,"overhead_limit_pct":5}"#,
        )
        .unwrap();
        assert_eq!(validate_artifact(&ok).unwrap(), "krr-bench-obs-v1");
        let missing = parse(r#"{"schema":"krr-bench-obs-v1","refs":1}"#).unwrap();
        assert!(validate_artifact(&missing)
            .unwrap_err()
            .contains("overhead_pct"));
        let unknown = parse(r#"{"schema":"krr-bench-nope-v9"}"#).unwrap();
        assert!(validate_artifact(&unknown).is_err());
        let untagged = parse(r#"{"refs":1}"#).unwrap();
        assert!(validate_artifact(&untagged).is_err());
        let trace =
            parse(r#"{"traceEvents":[],"otherData":{"schema":"krr-trace-v1","dropped_events":0}}"#)
                .unwrap();
        assert_eq!(validate_artifact(&trace).unwrap(), "krr-trace-v1");
    }
}
