//! # krr-core
//!
//! A from-scratch Rust implementation of **KRR**, the probabilistic stack
//! algorithm of *Efficient Modeling of Random Sampling-Based LRU*
//! (Yang, Wang & Wang, ICPP 2021), which constructs Miss Ratio Curves for
//! random sampling-based LRU ("K-LRU") caches — the approximated LRU used by
//! Redis — in a single pass over a trace.
//!
//! ## Quick start
//!
//! ```
//! use krr_core::{KrrConfig, KrrModel};
//!
//! // Model a Redis-style cache with maxmemory-samples = 5.
//! let mut model = KrrModel::new(KrrConfig::new(5.0));
//! for key in (0..10_000u64).chain(0..10_000) {
//!     model.access_key(key);
//! }
//! let mrc = model.mrc();
//! assert!(mrc.eval(10_000.0) < mrc.eval(10.0));
//! ```
//!
//! ## Choosing `K` and `K'`
//!
//! [`KrrConfig::new`] takes the cache's sampling size `K` (Redis
//! `maxmemory-samples`). The stack itself runs with the corrected
//! `K' = K^1.4` (§4.2 of the paper, [`prob::k_prime`]); interior stack
//! positions swap with probability `1 − ((i-1)/i)^K'` (Eq. 4.1), which is
//! what makes one probabilistic stack model a K-LRU cache of *every* size
//! in one pass.
//!
//! ## Modules
//!
//! * [`stack`] — the array-backed KRR priority stack.
//! * [`update`] — the three swap-chain samplers: naive O(M), top-down
//!   O(log²M) (Algorithm 1), backward O(logM) (Algorithm 2).
//! * [`prob`] — eviction-probability math (Propositions 1–2, Eq. 4.2).
//! * [`sizearray`] — byte-level distances for variable object sizes.
//! * [`sampling`] — SHARDS-style spatial sampling.
//! * [`histogram`] / [`mrc`] — stack-distance histograms and MRCs.
//! * [`model`] — the assembled one-pass profiler.
//! * [`sharded`] — thread-parallel profiling over hash shards.
//! * [`fleet`] — multi-tenant arena: thousands of per-tenant models in one
//!   process, with per-tenant metrics rows and MRC exposition.
//! * [`pipeline`] — streaming route-once batched router/worker pipeline.
//! * [`ring`] — the lock-free SPSC ring transport under the pipeline.
//! * [`metrics`] — lock-free counters/histograms observing the pipeline.
//! * [`obs`] — flight-recorder span tracing (Chrome trace export) and the
//!   windowed stats timeline.
//! * [`profiler`] — always-on self-profiler: per-thread phase-attribution
//!   rings behind the flight recorder, exported as folded flamegraph text.
//! * [`forensics`] — tail-request exemplars: a lock-free ring of p99+
//!   requests with their counter context (`krr-exemplars-v1`).
//! * [`doctor`] — the PERFORMANCE.md counter-signature playbook as
//!   machine-checked rules (`krr-doctor-v1`) plus the CI artifact
//!   schema validator.
//! * [`json`] — minimal std-only JSON parser for reading the repo's own
//!   artifacts back.
//! * [`expo`] — embedded HTTP/1.1 exposition server (`/metrics` in
//!   OpenMetrics text, `/mrc`, `/stats`, `/trace`, `/exemplars`,
//!   `/profile`, `/healthz`).
//! * [`footprint`] — deep memory accounting ([`Footprint`] trait) for the
//!   paper's §5.6–5.7 space-cost comparison.
//! * [`heap`] — opt-in counting global allocator (`alloc-stats` feature)
//!   behind the live/peak heap gauges.
//! * [`persist`] — plain-text persistence for histograms, MRCs and
//!   metrics snapshots.
//! * [`checkpoint`] — the crash-safe `krr-ckpt-v1` binary checkpoint
//!   format (CRC-guarded sections, atomic write-rename) behind
//!   [`KrrModel::checkpoint`] / [`ShardedKrr::checkpoint`].
//! * [`rng`] / [`hashing`] — deterministic RNG and key hashing substrate.

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod checkpoint;
pub mod doctor;
pub mod expo;
pub mod fleet;
pub mod footprint;
pub mod forensics;
pub mod hashing;
pub mod heap;
pub mod histogram;
pub mod json;
pub mod metrics;
pub mod model;
pub mod mrc;
pub mod obs;
pub mod partition;
pub mod persist;
pub mod pipeline;
pub mod prob;
pub mod profiler;
pub mod ring;
pub mod rng;
pub mod sampling;
pub mod sharded;
pub mod sizearray;
pub mod stack;
pub mod update;
pub mod windowed;

pub use checkpoint::{CheckpointReader, CheckpointWriter};
pub use doctor::{diagnose, DoctorCounters, DoctorReport, Finding};
pub use expo::{ExpoServer, ExpoSources, MrcCell, StatsRing};
pub use fleet::{FleetArena, FleetCell, FleetConfig, FleetView};
pub use footprint::{Footprint, FootprintReport};
pub use forensics::{Exemplar, ExemplarRing};
pub use histogram::SdHistogram;
pub use metrics::{MetricsRegistry, MetricsSnapshot, TenantRow};
pub use model::{KrrConfig, KrrModel, ModelStats, SizeMode};
pub use mrc::{even_sizes, Mrc};
pub use obs::{FlightRecorder, Phase, SpanEvent, StatsTimeline, ThreadRecorder};
pub use pipeline::PipelineConfig;
pub use profiler::{PhaseProfiler, ProfPhase};
pub use sampling::SpatialFilter;
pub use sharded::{shard_of_hash, ShardedKrr};
pub use sizearray::SizeArray;
pub use stack::{Access, Entry, KrrStack};
pub use update::UpdaterKind;
pub use windowed::WindowedKrr;
