//! Sharded, thread-parallel KRR profiling.
//!
//! KRR is a sequential stack algorithm, but spatial sampling makes it
//! embarrassingly parallel: partition the key space into `S` hash shards
//! and give each shard its own independent KRR model. Each shard is a
//! spatial sample at rate `1/S` — except the shards are *complementary*,
//! so their union covers every reference in the trace. Merging the shard
//! histograms therefore keeps the full reference mass (cold fraction is
//! exact) while each distance estimate carries only the usual SHARDS-style
//! scaling approximation.
//!
//! Every key is hashed exactly **once**: shard routing consumes the high
//! 32 bits of [`hash_key`] and the models' spatial filter consumes the low
//! 24 bits, disjoint slices of the same fully-avalanched hash (see
//! [`shard_of_hash`]). The hash is computed at the entry point — the
//! sequential [`ShardedKrr::access`] or the [`pipeline`] router — and
//! passed through, so neither routing nor sampling ever re-hashes.
//!
//! The parallel path ([`ShardedKrr::process_stream`]) is a streaming,
//! route-once, batched pipeline: a router thread hashes and batches
//! references per shard, and per-shard workers drain batches over
//! lock-free SPSC rings ([`crate::ring`]). Total routing work is O(N)
//! regardless of thread count, and
//! per-shard RNG seeds plus deterministic per-shard order keep results
//! bit-identical at any thread count.

use std::sync::Arc;

use crate::checkpoint::{CheckpointReader, CheckpointWriter, Dec, Enc, SECTION_SHARDED};
use crate::hashing::hash_key;
use crate::histogram::SdHistogram;
use crate::metrics::MetricsRegistry;
use crate::model::{KrrConfig, KrrModel, ModelStats};
use crate::mrc::Mrc;
use crate::obs::{FlightRecorder, Phase, ThreadRecorder};
use crate::pipeline::{self, PipelineConfig};

/// Maps an already-computed [`hash_key`] value to its owning shard.
///
/// Uses the hash's **high 32 bits** so the result is independent of the low
/// 24 bits that [`crate::SpatialFilter`] consumes for spatial sampling —
/// one hash serves both decisions without correlating them.
#[inline]
#[must_use]
pub fn shard_of_hash(key_hash: u64, n_shards: usize) -> usize {
    ((key_hash >> 32) % n_shards as u64) as usize
}

/// A bank of per-shard KRR models covering the whole key space.
#[derive(Debug)]
pub struct ShardedKrr {
    shards: Vec<KrrModel>,
    config: KrrConfig,
    metrics: Option<Arc<MetricsRegistry>>,
    recorder: Option<Arc<FlightRecorder>>,
    merge_recorder: Option<ThreadRecorder>,
}

impl Clone for ShardedKrr {
    /// Clones the bank's model state. Flight-recorder handles are NOT
    /// cloned (each ring has one writer); the clone starts detached —
    /// call [`ShardedKrr::set_recorder`] again to re-attach.
    fn clone(&self) -> Self {
        Self {
            shards: self.shards.clone(),
            config: self.config.clone(),
            metrics: self.metrics.clone(),
            recorder: None,
            merge_recorder: None,
        }
    }
}

impl ShardedKrr {
    /// Creates `n_shards >= 1` shard models from a template configuration
    /// (per-shard seeds are derived from the template's).
    #[must_use]
    pub fn new(config: &KrrConfig, n_shards: usize) -> Self {
        assert!(n_shards >= 1);
        let shards = (0..n_shards)
            .map(|i| {
                let mut cfg = config.clone();
                cfg.seed = config.seed ^ ((i as u64 + 1) << 48);
                KrrModel::new(cfg)
            })
            .collect();
        Self {
            shards,
            config: config.clone(),
            metrics: None,
            recorder: None,
            merge_recorder: None,
        }
    }

    /// Attaches a metrics registry to every shard model and claims its
    /// per-shard access counters (sized to this bank's shard count).
    pub fn set_metrics(&mut self, metrics: Arc<MetricsRegistry>) {
        metrics.init_shards(self.shards.len());
        for s in &mut self.shards {
            s.set_metrics(Arc::clone(&metrics));
        }
        self.metrics = Some(metrics);
    }

    /// Attaches a flight recorder: each shard model gets its own
    /// `shard-<i>` ring (stack-update spans), histogram merges record
    /// [`Phase::Merge`] spans on a `merge` ring, and pipeline runs
    /// register `router`/`worker-<w>` rings. Tracing is strictly
    /// observational — MRCs stay bit-identical with or without it.
    pub fn set_recorder(&mut self, recorder: Arc<FlightRecorder>) {
        for (i, s) in self.shards.iter_mut().enumerate() {
            s.set_recorder(recorder.register(&format!("shard-{i}")));
        }
        self.merge_recorder = Some(recorder.register("merge"));
        self.recorder = Some(recorder);
    }

    /// Number of shards.
    #[must_use]
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The shard responsible for `key`.
    #[must_use]
    pub fn shard_for(&self, key: u64) -> usize {
        shard_of_hash(hash_key(key), self.shards.len())
    }

    /// Offers one reference (sequential path). The key is hashed once;
    /// routing and the shard model's spatial filter share the hash.
    pub fn access(&mut self, key: u64, size: u32) {
        let h = hash_key(key);
        let s = shard_of_hash(h, self.shards.len());
        if let Some(m) = &self.metrics {
            m.shard_access(s);
        }
        self.shards[s].access_hashed(key, size, h);
        if let Some(m) = &self.metrics {
            m.set_shard_resident(s, self.shards[s].stats().distinct);
            m.record_shard_depth(s, self.shards[s].deepest_hit());
        }
    }

    /// Offers a uniform-size reference (sequential path).
    pub fn access_key(&mut self, key: u64) {
        self.access(key, 1);
    }

    /// Processes a whole in-memory trace of `(key, size)` pairs with
    /// `threads` worker threads. Delegates to [`ShardedKrr::process_stream`];
    /// kept for callers that already hold the trace as a slice.
    pub fn process_parallel(&mut self, refs: &[(u64, u32)], threads: usize) {
        self.process_stream(refs.iter().copied(), threads);
    }

    /// Streams `refs` through the route-once batched pipeline with
    /// `threads` worker threads (plus the calling thread as router). The
    /// trace never needs to be materialized; results are bit-identical to
    /// the sequential [`ShardedKrr::access`] loop at any thread count.
    /// Pipeline tuning scales with the worker count
    /// ([`PipelineConfig::for_threads`]): wide pools get bigger batches
    /// and deeper queues so the single router keeps up.
    pub fn process_stream<I>(&mut self, refs: I, threads: usize)
    where
        I: Iterator<Item = (u64, u32)>,
    {
        self.process_stream_with(refs, threads, &PipelineConfig::for_threads(threads));
    }

    /// [`ShardedKrr::process_stream`] with explicit pipeline tuning.
    pub fn process_stream_with<I>(&mut self, refs: I, threads: usize, cfg: &PipelineConfig)
    where
        I: Iterator<Item = (u64, u32)>,
    {
        let shards = std::mem::take(&mut self.shards);
        self.shards = pipeline::run(
            shards,
            refs,
            threads,
            cfg,
            self.metrics.as_ref(),
            self.recorder.as_ref(),
        );
        self.publish_footprint();
    }

    /// [`ShardedKrr::process_stream`] over the PR 6-era transport: bounded
    /// `sync_channel`s instead of lock-free SPSC rings, scalar hashing
    /// instead of 8-wide, and a per-reference worker drain instead of
    /// [`KrrModel::access_batch`]. Kept as the live A/B baseline for
    /// `benches/pipeline.rs`; results are bit-identical to
    /// [`ShardedKrr::process_stream`], just slower.
    pub fn process_stream_channels<I>(&mut self, refs: I, threads: usize)
    where
        I: Iterator<Item = (u64, u32)>,
    {
        let shards = std::mem::take(&mut self.shards);
        self.shards = pipeline::run_channels(
            shards,
            refs,
            threads,
            &PipelineConfig::for_threads(threads),
            self.metrics.as_ref(),
            self.recorder.as_ref(),
        );
        self.publish_footprint();
    }

    /// The pre-pipeline parallel path, kept as a benchmark baseline: every
    /// worker re-scans the **full** trace, re-hashes every key (T×N total
    /// hash work — watch `pipeline.keys_hashed`), and linear-scans its
    /// shard group for the owner. Produces the same bit-identical result,
    /// just slower; new code should use [`ShardedKrr::process_stream`].
    pub fn process_parallel_rescan(&mut self, refs: &[(u64, u32)], threads: usize) {
        let n_shards = self.shards.len();
        let threads = threads.clamp(1, n_shards);
        let shards = std::mem::take(&mut self.shards);
        // Group (shard index, model) by worker thread.
        let mut groups: Vec<Vec<(usize, KrrModel)>> = (0..threads).map(|_| Vec::new()).collect();
        for (i, m) in shards.into_iter().enumerate() {
            groups[i % threads].push((i, m));
        }
        let metrics = self.metrics.clone();
        let done: Vec<Vec<(usize, KrrModel)>> = std::thread::scope(|scope| {
            let handles: Vec<_> = groups
                .into_iter()
                .map(|mut group| {
                    let metrics = metrics.clone();
                    scope.spawn(move || {
                        for &(key, size) in refs {
                            let h = hash_key(key);
                            let s = shard_of_hash(h, n_shards);
                            for (i, m) in &mut group {
                                if *i == s {
                                    if let Some(reg) = &metrics {
                                        reg.shard_access(s);
                                    }
                                    m.access_hashed(key, size, h);
                                    break;
                                }
                            }
                        }
                        if let Some(reg) = &metrics {
                            reg.pipeline_keys_hashed.add(refs.len() as u64);
                        }
                        group
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("shard worker panicked"))
                .collect()
        });
        let mut shards: Vec<Option<KrrModel>> = (0..n_shards).map(|_| None).collect();
        for group in done {
            for (i, m) in group {
                shards[i] = Some(m);
            }
        }
        self.shards = shards
            .into_iter()
            .map(|m| m.expect("shard returned"))
            .collect();
    }

    /// Aggregate counters over all shards.
    #[must_use]
    pub fn stats(&self) -> ModelStats {
        let mut total = ModelStats {
            processed: 0,
            sampled: 0,
            distinct: 0,
        };
        for s in &self.shards {
            let st = s.stats();
            total.processed += st.processed;
            total.sampled += st.sampled;
            total.distinct += st.distinct;
        }
        total
    }

    /// The merged MRC: shard histograms are summed (they share a bin
    /// width), the count correction is applied at the merged level, and the
    /// size axis is expanded by `S/R`.
    #[must_use]
    pub fn mrc(&self) -> Mrc {
        let t0 = self.metrics.as_ref().map(|_| std::time::Instant::now());
        let r0 = self.merge_recorder.as_ref().map(ThreadRecorder::now_ns);
        let mut merged = SdHistogram::new(self.config.bin_width);
        for s in &self.shards {
            merged.merge(s.histogram());
        }
        if let (Some(m), Some(t0)) = (&self.metrics, t0) {
            m.merges.inc();
            m.merge_ns.add(t0.elapsed().as_nanos() as u64);
        }
        if let (Some(r), Some(r0)) = (&self.merge_recorder, r0) {
            r.record_since(Phase::Merge, r0, self.shards.len() as u64);
        }
        let st = self.stats();
        let rate = self.shards.first().map_or(1.0, KrrModel::sampling_rate);
        if self.config.spatial_adjustment {
            // Union-of-shards coverage: expected sampled = processed · R
            // (R = the per-shard spatial rate; shard routing itself keeps
            // every key).
            let expected = (st.processed as f64 * rate).round() as i64;
            merged.apply_count_adjustment(expected - st.sampled as i64);
        }
        let scale = self.shards.len() as f64 / rate;
        let mut mrc = Mrc::from_histogram(&merged, scale);
        mrc.make_monotone();
        mrc
    }

    /// Serializes the whole bank — template config plus every shard
    /// model's full state (see [`KrrModel::save_state`]) — into a
    /// `krr-ckpt-v1` payload.
    pub fn save_state(&self, enc: &mut Enc) {
        self.config.save_state(enc);
        enc.put_u64(self.shards.len() as u64);
        for s in &self.shards {
            s.save_state(enc);
        }
    }

    /// Reconstructs a bank from a [`ShardedKrr::save_state`] payload. Like
    /// [`KrrModel::load_state`], the restored bank starts with metrics and
    /// recorders detached; re-attach via [`ShardedKrr::set_metrics`] /
    /// [`ShardedKrr::set_recorder`].
    pub fn load_state(dec: &mut Dec<'_>) -> std::io::Result<Self> {
        let config = KrrConfig::load_state(dec)?;
        let n = usize::try_from(dec.u64()?).map_err(|_| {
            std::io::Error::new(std::io::ErrorKind::InvalidData, "shard count overflow")
        })?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                "checkpoint has zero shards",
            ));
        }
        let mut shards = Vec::with_capacity(n);
        for _ in 0..n {
            shards.push(KrrModel::load_state(dec)?);
        }
        Ok(Self {
            shards,
            config,
            metrics: None,
            recorder: None,
            merge_recorder: None,
        })
    }

    /// Writes a standalone `krr-ckpt-v1` checkpoint (one `SHRD` section)
    /// to `w`. Restoring and finishing the trace is bit-identical to an
    /// uninterrupted run at any thread count — the invariant
    /// `tests/checkpoint.rs` asserts at every batch boundary.
    pub fn checkpoint<W: std::io::Write>(&self, w: W) -> std::io::Result<()> {
        let mut ckpt = CheckpointWriter::new();
        self.save_state(ckpt.section(SECTION_SHARDED));
        ckpt.write_to(w)
    }

    /// Restores a bank from a checkpoint written by
    /// [`ShardedKrr::checkpoint`], validating magic, version, and section
    /// CRCs.
    pub fn restore<R: std::io::Read>(r: R) -> std::io::Result<Self> {
        let ckpt = CheckpointReader::read_from(r)?;
        Self::load_state(&mut ckpt.require(SECTION_SHARDED)?)
    }

    /// Pushes the current footprint breakdown and every shard's
    /// resident/depth gauges into the attached registry (no-op when
    /// detached). Called automatically after a pipeline run; long
    /// sequential loops may call it at their own cadence.
    pub fn publish_footprint(&self) {
        use crate::footprint::Footprint as _;
        let Some(m) = &self.metrics else { return };
        for (i, s) in self.shards.iter().enumerate() {
            m.set_shard_resident(i, s.stats().distinct);
            m.record_shard_depth(i, s.deepest_hit());
        }
        m.publish_footprint(&self.footprint());
    }
}

impl crate::footprint::Footprint for ShardedKrr {
    /// Label-wise sum of every shard model's footprint, so the breakdown
    /// (`stack_entries`, `stack_index`, `histogram`, ...) stays per-field
    /// while covering the whole bank.
    fn footprint(&self) -> crate::footprint::FootprintReport {
        let mut r = crate::footprint::FootprintReport::new();
        for s in &self.shards {
            r.merge(&s.footprint());
        }
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Xoshiro256;

    fn skewed(keys: u64, n: usize, seed: u64) -> Vec<(u64, u32)> {
        let mut rng = Xoshiro256::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let u = rng.unit();
                ((u * u * keys as f64) as u64, 1)
            })
            .collect()
    }

    #[test]
    fn single_shard_equals_plain_model() {
        let refs = skewed(5_000, 100_000, 1);
        let cfg = KrrConfig::new(4.0).seed(9);
        let mut sharded = ShardedKrr::new(&cfg, 1);
        let mut plain = KrrModel::new(cfg);
        for &(k, s) in &refs {
            sharded.access(k, s);
            plain.access(k, s);
        }
        // Identical config and seed derivation differs, so compare curves
        // statistically rather than bit-for-bit.
        let sizes = crate::even_sizes(5_000.0, 20);
        assert!(sharded.mrc().mae(&plain.mrc(), &sizes) < 0.01);
        assert_eq!(sharded.stats().processed, plain.stats().processed);
    }

    #[test]
    fn sharded_matches_full_model() {
        let keys = 50_000u64;
        let refs = skewed(keys, 400_000, 2);
        let cfg = KrrConfig::new(5.0).seed(3);
        let mut sharded = ShardedKrr::new(&cfg, 8);
        for &(k, s) in &refs {
            sharded.access(k, s);
        }
        let mut plain = KrrModel::new(cfg);
        for &(k, _) in &refs {
            plain.access_key(k);
        }
        let sizes = crate::even_sizes(keys as f64, 25);
        let mae = sharded.mrc().mae(&plain.mrc(), &sizes);
        assert!(mae < 0.02, "8-shard vs full MAE {mae}");
        // Union coverage: every reference lands in some shard.
        assert_eq!(sharded.stats().sampled, refs.len() as u64);
    }

    #[test]
    fn parallel_equals_sequential() {
        let refs = skewed(10_000, 150_000, 4);
        let cfg = KrrConfig::new(4.0).seed(5);
        let mut seq = ShardedKrr::new(&cfg, 6);
        for &(k, s) in &refs {
            seq.access(k, s);
        }
        for threads in [1usize, 3, 6, 16] {
            let mut par = ShardedKrr::new(&cfg, 6);
            par.process_parallel(&refs, threads);
            assert_eq!(par.mrc().points(), seq.mrc().points(), "threads={threads}");

            let mut rescan = ShardedKrr::new(&cfg, 6);
            rescan.process_parallel_rescan(&refs, threads);
            assert_eq!(
                rescan.mrc().points(),
                seq.mrc().points(),
                "rescan threads={threads}"
            );
        }
    }

    #[test]
    fn stream_equals_slice_path() {
        let refs = skewed(8_000, 120_000, 10);
        let cfg = KrrConfig::new(4.0).seed(6);
        let mut slice = ShardedKrr::new(&cfg, 4);
        slice.process_parallel(&refs, 4);
        let mut stream = ShardedKrr::new(&cfg, 4);
        stream.process_stream(refs.iter().copied(), 4);
        assert_eq!(stream.mrc().points(), slice.mrc().points());
        assert_eq!(stream.stats(), slice.stats());
    }

    #[test]
    fn composes_with_spatial_sampling() {
        let keys = 100_000u64;
        let refs = skewed(keys, 400_000, 6);
        let cfg = KrrConfig::new(4.0).seed(7).sampling(0.5);
        let mut sharded = ShardedKrr::new(&cfg, 4);
        sharded.process_parallel(&refs, 4);
        let st = sharded.stats();
        assert!(
            st.sampled < st.processed * 6 / 10,
            "sampling must still filter"
        );
        let mut plain = KrrModel::new(KrrConfig::new(4.0).seed(8));
        for &(k, _) in &refs {
            plain.access_key(k);
        }
        let sizes = crate::even_sizes(keys as f64, 20);
        let mae = sharded.mrc().mae(&plain.mrc(), &sizes);
        assert!(mae < 0.03, "sharded+sampled MAE {mae}");
    }

    #[test]
    fn checkpoint_restore_resumes_bit_identically() {
        let refs = skewed(6_000, 60_000, 13);
        let cfg = KrrConfig::new(4.0).seed(14).sampling(0.5);
        let mut uninterrupted = ShardedKrr::new(&cfg, 4);
        uninterrupted.process_stream(refs.iter().copied(), 3);

        let mut a = ShardedKrr::new(&cfg, 4);
        a.process_stream(refs[..30_000].iter().copied(), 3);
        let mut bytes = Vec::new();
        a.checkpoint(&mut bytes).unwrap();
        let mut b = ShardedKrr::restore(&bytes[..]).unwrap();
        b.process_stream(refs[30_000..].iter().copied(), 5);
        assert_eq!(b.stats(), uninterrupted.stats());
        assert_eq!(b.mrc().points(), uninterrupted.mrc().points());
    }

    #[test]
    fn shard_routing_is_stable_and_balanced() {
        let cfg = KrrConfig::new(2.0);
        let sharded = ShardedKrr::new(&cfg, 8);
        let mut counts = [0u32; 8];
        for key in 0..80_000u64 {
            let s = sharded.shard_for(key);
            assert_eq!(s, sharded.shard_for(key));
            counts[s] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            let dev = (f64::from(c) - 10_000.0).abs() / 10_000.0;
            assert!(dev < 0.05, "shard {i} holds {c}");
        }
    }

    #[test]
    fn routing_and_sampling_bits_are_disjoint() {
        // shard_of_hash must ignore the low 24 bits the SpatialFilter
        // consumes: perturbing them never changes the shard.
        for h in [0u64, 0xDEAD_BEEF_0000_0000, u64::MAX << 32] {
            for low in [0u64, 1, 0xFF_FFFF] {
                assert_eq!(shard_of_hash(h, 8), shard_of_hash(h | low, 8));
            }
        }
    }
}
