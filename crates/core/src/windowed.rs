//! Windowed online profiling: MRCs that track the *current* workload
//! phase instead of all history.
//!
//! A long-running profiler's cumulative histogram goes stale when the
//! workload shifts (the DLRU adapter works around this by restarting its
//! profilers). [`WindowedKrr`] generalizes that: two [`KrrModel`]s rotate
//! every `window` references, and queries are answered from the blend of
//! the full previous window and the in-progress one — bounded memory,
//! bounded staleness, no cold-start gap at rotation.

use crate::histogram::SdHistogram;
use crate::model::{KrrConfig, KrrModel};
use crate::mrc::Mrc;

/// Rotating two-window KRR profiler.
#[derive(Debug, Clone)]
pub struct WindowedKrr {
    config: KrrConfig,
    window: u64,
    current: KrrModel,
    previous: Option<KrrModel>,
    in_window: u64,
    rotations: u64,
}

impl WindowedKrr {
    /// Creates a profiler that rotates every `window > 0` references.
    #[must_use]
    pub fn new(config: KrrConfig, window: u64) -> Self {
        assert!(window > 0, "window must be positive");
        let current = KrrModel::new(config.clone());
        Self {
            config,
            window,
            current,
            previous: None,
            in_window: 0,
            rotations: 0,
        }
    }

    /// Offers one reference.
    pub fn access(&mut self, key: u64, size: u32) {
        if self.in_window >= self.window {
            self.rotate();
        }
        self.current.access(key, size);
        self.in_window += 1;
    }

    /// Offers a uniform-size reference.
    pub fn access_key(&mut self, key: u64) {
        self.access(key, 1);
    }

    fn rotate(&mut self) {
        let mut cfg = self.config.clone();
        // Fresh stack randomness per window, deterministically derived.
        cfg.seed = self.config.seed ^ (self.rotations + 1).wrapping_mul(0x9E37_79B9);
        let fresh = KrrModel::new(cfg);
        self.previous = Some(std::mem::replace(&mut self.current, fresh));
        self.in_window = 0;
        self.rotations += 1;
    }

    /// Number of completed window rotations.
    #[must_use]
    pub fn rotations(&self) -> u64 {
        self.rotations
    }

    /// The MRC over the last one-to-two windows of traffic: the merged
    /// histograms of the previous (complete) and current (partial) windows.
    #[must_use]
    pub fn mrc(&self) -> Mrc {
        match &self.previous {
            None => self.current.mrc(),
            Some(prev) => {
                let mut merged: SdHistogram = prev.histogram().clone();
                merged.merge(self.current.histogram());
                // Both windows share the sampling rate; apply the count
                // correction over the union.
                let rate = self.current.sampling_rate();
                if rate < 1.0 && self.config.spatial_adjustment {
                    let processed = prev.stats().processed + self.current.stats().processed;
                    let sampled = prev.stats().sampled + self.current.stats().sampled;
                    let expected = (processed as f64 * rate).round() as i64;
                    merged.apply_count_adjustment(expected - sampled as i64);
                }
                let mut mrc = Mrc::from_histogram(&merged, 1.0 / rate);
                mrc.make_monotone();
                mrc
            }
        }
    }

    /// References seen in the in-progress window.
    #[must_use]
    pub fn current_window_len(&self) -> u64 {
        self.in_window
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Xoshiro256;

    #[test]
    fn no_rotation_behaves_like_plain_model() {
        let cfg = KrrConfig::new(4.0).seed(1);
        let mut w = WindowedKrr::new(cfg.clone(), 1_000_000);
        let mut plain = KrrModel::new(cfg);
        let mut rng = Xoshiro256::seed_from_u64(2);
        for _ in 0..50_000 {
            let key = rng.below(2_000);
            w.access_key(key);
            plain.access_key(key);
        }
        assert_eq!(w.rotations(), 0);
        assert_eq!(w.mrc().points(), plain.mrc().points());
    }

    #[test]
    fn rotations_happen_on_schedule() {
        let mut w = WindowedKrr::new(KrrConfig::new(2.0), 1_000);
        for key in 0..10_500u64 {
            w.access_key(key % 300);
        }
        assert_eq!(w.rotations(), 10);
        assert_eq!(w.current_window_len(), 500);
    }

    #[test]
    fn windowed_mrc_tracks_a_phase_shift() {
        // Phase 1: 500 hot keys. Phase 2: a different set of 5000 keys.
        // After phase 2 has filled both windows, the windowed MRC must
        // reflect phase 2's working set, while the cumulative model still
        // blends both.
        let cfg = KrrConfig::new(4.0).seed(3);
        let mut windowed = WindowedKrr::new(cfg.clone(), 50_000);
        let mut cumulative = KrrModel::new(cfg);
        let mut rng = Xoshiro256::seed_from_u64(4);
        for _ in 0..150_000 {
            let key = rng.below(500);
            windowed.access_key(key);
            cumulative.access_key(key);
        }
        for _ in 0..150_000 {
            let key = 10_000 + rng.below(5_000);
            windowed.access_key(key);
            cumulative.access_key(key);
        }
        // Phase 2 miss ratio at 500 objects is high (working set 5000);
        // the windowed view must say so.
        let w = windowed.mrc().eval(500.0);
        let c = cumulative.mrc().eval(500.0);
        assert!(w > 0.5, "windowed should reflect the new phase: {w}");
        assert!(w > c + 0.1, "windowed {w} must exceed cumulative blend {c}");
        // And at 5000 objects the windowed curve should be near its floor.
        assert!(windowed.mrc().eval(5_000.0) < 0.2);
    }

    #[test]
    fn composes_with_spatial_sampling() {
        let cfg = KrrConfig::new(4.0).seed(5).sampling(0.25);
        let mut w = WindowedKrr::new(cfg, 40_000);
        let mut rng = Xoshiro256::seed_from_u64(6);
        for _ in 0..120_000 {
            w.access_key(rng.below(20_000));
        }
        let mrc = w.mrc();
        assert!(mrc.max_size() > 10_000.0, "axis must be rescaled by 1/R");
        assert!(mrc.eval(1.0) <= 1.0 && mrc.eval(1e9) >= 0.0);
    }
}
