//! Streaming, route-once, batched profiling pipeline over lock-free SPSC
//! rings.
//!
//! The naive way to parallelize sharded profiling — every worker scans the
//! whole trace and keeps its shards' keys — does `T·N` routing work for `T`
//! threads over `N` references and needs the entire trace resident in
//! memory. This module replaces it with a router/worker topology:
//!
//! ```text
//!             ┌──────────┐   SPSC batch rings   ┌──────────┐
//!  refs ────► │  router  │ ══ Batch(s=0,3) ════►│ worker 0 │ shards {0,3}
//!  (any       │ hash 8   │ ══ Batch(s=1,4) ════►│ worker 1 │ shards {1,4}
//!  iterator)  │ per call │ ══ Batch(s=2,5) ════►│ worker 2 │ shards {2,5}
//!             │  batch   │ ◄═ SPSC freelist ════╡ (batched │
//!             └──────────┘    (recycled Vecs)   │  access) │
//!                                               └────┬─────┘
//!                                      sharded merge ▼ (ShardedKrr::mrc,
//!                                       per-shard histograms — the router
//!                                       never participates or blocks)
//! ```
//!
//! * **Route once.** The router computes `hash_key(key)` exactly once per
//!   reference — eight at a time via [`crate::hashing::hash_keys8`] so the
//!   independent mix chains overlap in the pipeline; the shard index comes
//!   from the hash's high bits and the spatial filter later consumes its
//!   low bits, so the hash rides along in the batch and no stage ever
//!   re-hashes. Total hash work is `N`, not `T·N`.
//! * **Batching.** References are accumulated into per-shard buffers of
//!   [`PipelineConfig::batch_size`] entries (default ~4K), amortizing
//!   transport synchronization over thousands of references — the lever
//!   Inoue's multi-step LRU exploits for batched cache replacement.
//!   Workers drain a batch through [`KrrModel::access_batch`], which
//!   filters admission 8-wide and branchlessly.
//! * **Lock-free bounded transport + recycling.** Each worker is fed by
//!   its own single-producer/single-consumer ring ([`crate::ring`]) of
//!   [`PipelineConfig::queue_depth`] batch slots (rounded up to a power of
//!   two): pushes and pops are one store plus a usually-core-local load,
//!   no mutex, no syscall. A full ring stalls the router (spin, then park
//!   — recorded in metrics) instead of ballooning memory. Drained buffers
//!   return over a per-worker SPSC freelist ring; both freelist ends use
//!   only the non-blocking operations, so recycling can never block the
//!   router — at worst a buffer is dropped and reallocated.
//! * **Streaming.** The input is any `Iterator<Item = (u64, u32)>`; traces
//!   never need to be materialized as a slice, so multi-GB files profile in
//!   constant memory.
//!
//! # Invariant: bit-identical MRCs at any thread count
//!
//! Shard `s` is owned by exactly worker `s % threads`, the router emits a
//! shard's batches in trace order, and the owning worker drains its ring in
//! FIFO order — so every shard model observes exactly the subsequence it
//! would see on the sequential path, in the same order, and consumes its
//! RNG stream identically. Batching never reorders admitted references
//! ([`KrrModel::access_batch`] documents its half of the contract).
//! Results are therefore bit-identical to [`crate::ShardedKrr::access`]
//! loops at **any** thread count — not approximately equal: the same
//! histogram bins, the same MRC bytes. Enforced by the `sharded`,
//! `pipeline`, and `fleet` suites at 1/2/4/8/16 threads and by the
//! `benches/pipeline.rs` golden comparison.
//!
//! The ring transport's own safety argument (Acquire/Release publication,
//! single-writer rule) lives in [`crate::ring`]'s module docs.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};
use std::sync::Arc;
use std::time::Instant;

use crate::hashing::{hash_key, hash_keys8};
use crate::metrics::MetricsRegistry;
use crate::model::KrrModel;
use crate::obs::{FlightRecorder, Phase};
use crate::profiler::ProfPhase;
use crate::ring::{ring, Consumer, Producer};
use crate::sharded::shard_of_hash;

/// Tuning knobs for the streaming pipeline.
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    /// References per batch (default 4096). Larger batches amortize
    /// transport overhead further but add latency before a shard sees its
    /// keys and grow resident buffer memory (`shards × batch_size × 24 B`
    /// plus whatever is in flight).
    pub batch_size: usize,
    /// Bound of each worker's batch ring, in batches (default 4; rounded
    /// up to a power of two, minimum 2, by the ring allocator). When a
    /// ring is full the router spins then parks — back-pressure instead of
    /// unbounded buffering; each such event is recorded as a pipeline
    /// stall.
    pub queue_depth: usize,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        Self {
            batch_size: 4096,
            queue_depth: 4,
        }
    }
}

impl PipelineConfig {
    /// Tuning matched to the worker count.
    ///
    /// The defaults (4096 × 4) are sized for small worker pools. At 8+
    /// workers the single router becomes the bottleneck: with only 4
    /// batches of ring credit per worker, the fan-out drains faster than
    /// one thread can refill it, so the router spends its time stalled
    /// (visible as `pipeline.stalls`) and throughput flatlines. Doubling
    /// the batch (halving ring hand-offs per reference) and quadrupling
    /// the ring bound (absorbing worker speed variance) keeps the router
    /// ahead; memory cost is still only `shards × 8192 × 24 B` of
    /// buffers. See `docs/PERFORMANCE.md` for the full knob guide.
    #[must_use]
    pub fn for_threads(threads: usize) -> Self {
        if threads >= 8 {
            Self {
                batch_size: 8192,
                queue_depth: 16,
            }
        } else {
            Self::default()
        }
    }

    /// Resident bytes of the router's per-shard accumulation buffers for
    /// `n_shards` shards: one `(key, size, hash)` entry is 24 bytes and
    /// every shard keeps one `batch_size` buffer. In-flight batches (up to
    /// `queue_depth` per worker) recycle from the same pool, so this is
    /// the steady-state floor the `footprint_pipeline_bytes` gauge
    /// reports.
    #[must_use]
    pub fn buffer_bytes(&self, n_shards: usize) -> usize {
        n_shards * self.batch_size.max(1) * std::mem::size_of::<(u64, u32, u64)>()
    }
}

/// One `(key, size, hash)` reference as carried between router and
/// workers.
type RoutedRef = (u64, u32, u64);

/// One routed batch: references (with their precomputed key hashes) all
/// belonging to `shard`.
struct Batch {
    shard: usize,
    refs: Vec<RoutedRef>,
}

/// Iterator adapter that hashes and routes in blocks of 8: pulls up to 8
/// `(key, size)` pairs, runs [`hash_keys8`] over the full blocks (scalar
/// [`hash_key`] on the final partial block — same values either way), and
/// yields `(shard, key, size, hash)` in input order.
struct Route8<I> {
    inner: I,
    n_shards: usize,
    buf: [(usize, u64, u32, u64); 8],
    len: usize,
    pos: usize,
}

impl<I: Iterator<Item = (u64, u32)>> Iterator for Route8<I> {
    type Item = (usize, u64, u32, u64);

    #[inline]
    fn next(&mut self) -> Option<(usize, u64, u32, u64)> {
        if self.pos == self.len {
            let mut keys = [0u64; 8];
            let mut sizes = [0u32; 8];
            let mut n = 0;
            while n < 8 {
                match self.inner.next() {
                    Some((k, s)) => {
                        keys[n] = k;
                        sizes[n] = s;
                        n += 1;
                    }
                    None => break,
                }
            }
            if n == 0 {
                return None;
            }
            if n == 8 {
                let hashes = hash_keys8(keys);
                for i in 0..8 {
                    self.buf[i] = (
                        shard_of_hash(hashes[i], self.n_shards),
                        keys[i],
                        sizes[i],
                        hashes[i],
                    );
                }
            } else {
                for i in 0..n {
                    let h = hash_key(keys[i]);
                    self.buf[i] = (shard_of_hash(h, self.n_shards), keys[i], sizes[i], h);
                }
            }
            self.len = n;
            self.pos = 0;
        }
        let item = self.buf[self.pos];
        self.pos += 1;
        Some(item)
    }
}

/// Drives `refs` through `models` with `threads` workers plus the calling
/// thread as router. Returns the models with every reference applied;
/// per-shard reference order (and therefore every model's state) is
/// identical to a sequential [`crate::ShardedKrr::access`] loop.
pub(crate) fn run<I>(
    models: Vec<KrrModel>,
    refs: I,
    threads: usize,
    cfg: &PipelineConfig,
    metrics: Option<&Arc<MetricsRegistry>>,
    recorder: Option<&Arc<FlightRecorder>>,
) -> Vec<KrrModel>
where
    I: Iterator<Item = (u64, u32)>,
{
    let n_shards = models.len();
    run_routed(
        models,
        Route8 {
            inner: refs,
            n_shards,
            buf: [(0, 0, 0, 0); 8],
            len: 0,
            pos: 0,
        },
        threads,
        cfg,
        metrics,
        recorder,
    )
}

/// The generalized router/worker topology over **pre-routed** items: each
/// item carries its destination slot, key, size, and the key's
/// already-computed [`hash_key`] value. [`run`] resolves slots by
/// [`shard_of_hash`]; [`crate::fleet::FleetArena`] resolves them by tenant
/// id. The contract is the same either way — the hash MUST be
/// `hash_key(key)` (computed exactly once per reference, counted as
/// `pipeline.keys_hashed`), slot `s` is owned by worker `s % threads`, and
/// per-slot FIFO order makes results bit-identical to a sequential loop at
/// any thread count (the module-level invariant).
pub(crate) fn run_routed<I>(
    models: Vec<KrrModel>,
    items: I,
    threads: usize,
    cfg: &PipelineConfig,
    metrics: Option<&Arc<MetricsRegistry>>,
    recorder: Option<&Arc<FlightRecorder>>,
) -> Vec<KrrModel>
where
    I: Iterator<Item = (usize, u64, u32, u64)>,
{
    let n_shards = models.len();
    let threads = threads.clamp(1, n_shards);
    let batch_size = cfg.batch_size.max(1);
    let ring_slots = cfg.queue_depth.max(1);
    if let Some(reg) = metrics {
        reg.footprint_pipeline_bytes
            .set(cfg.buffer_bytes(n_shards) as u64);
        reg.init_rings(threads);
    }

    // Worker w owns shards {s | s % threads == w}; shard s sits at local
    // slot s / threads in its group, so workers route batches to models in
    // O(1) without a scan.
    let mut groups: Vec<Vec<KrrModel>> = (0..threads).map(|_| Vec::new()).collect();
    for (s, m) in models.into_iter().enumerate() {
        groups[s % threads].push(m);
    }

    // Batches in flight per shard, for the queue-depth high-water metric.
    let depth: Vec<AtomicU64> = (0..n_shards).map(|_| AtomicU64::new(0)).collect();
    let depth = &depth;

    // Per worker: a batch ring (router is producer) and a freelist ring
    // carrying drained buffers back (worker is producer). The freelist is
    // sized 2× the batch ring so a worker can return every in-flight
    // buffer plus a margin without dropping any.
    let mut batch_txs: Vec<Producer<Batch>> = Vec::with_capacity(threads);
    let mut batch_rxs: Vec<Option<Consumer<Batch>>> = Vec::with_capacity(threads);
    let mut free_txs: Vec<Option<Producer<Vec<RoutedRef>>>> = Vec::with_capacity(threads);
    let mut free_rxs: Vec<Consumer<Vec<RoutedRef>>> = Vec::with_capacity(threads);
    for _ in 0..threads {
        let (tx, rx) = ring::<Batch>(ring_slots);
        batch_txs.push(tx);
        batch_rxs.push(Some(rx));
        let (ftx, frx) = ring::<Vec<RoutedRef>>(ring_slots * 2);
        free_txs.push(Some(ftx));
        free_rxs.push(frx);
    }

    let mut regrouped: Vec<Option<Vec<KrrModel>>> = (0..threads).map(|_| None).collect();
    std::thread::scope(|scope| {
        let handles: Vec<_> = groups
            .into_iter()
            .zip(batch_rxs.iter_mut())
            .zip(free_txs.iter_mut())
            .enumerate()
            .map(|(w, ((mut group, rx), ftx))| {
                let mut rx = rx.take().expect("consumer moved once");
                let mut ftx = ftx.take().expect("freelist producer moved once");
                let metrics = metrics.cloned();
                let rec = recorder.map(|r| r.register(&format!("worker-{w}")));
                scope.spawn(move || {
                    let mut busy_ns = 0u64;
                    loop {
                        let w0 = rec.as_ref().map(|r| r.now_ns());
                        let Some(batch) = rx.pop() else { break };
                        // Attribute the time spent inside pop() (spin +
                        // park on an empty ring) to ring-wait: long waits
                        // become trace spans, short ones only profiler
                        // samples, so the timeline stays readable.
                        if let (Some(r), Some(w0)) = (&rec, w0) {
                            let wait = r.now_ns().saturating_sub(w0);
                            if wait >= 1_000 {
                                r.record(Phase::RingWait, w0, wait, w as u64);
                            } else {
                                r.profile(ProfPhase::RingWait, wait);
                            }
                        }
                        let t0 = Instant::now();
                        let r0 = rec.as_ref().map(|r| r.now_ns());
                        let model = &mut group[batch.shard / threads];
                        model.access_batch(&batch.refs);
                        if let (Some(r), Some(r0)) = (&rec, r0) {
                            r.record_since(Phase::WorkerBatch, r0, batch.refs.len() as u64);
                        }
                        depth[batch.shard].fetch_sub(1, Ordering::Relaxed);
                        if let Some(reg) = &metrics {
                            reg.shard_access_n(batch.shard, batch.refs.len() as u64);
                            reg.set_shard_resident(batch.shard, model.stats().distinct);
                            reg.record_shard_depth(batch.shard, model.deepest_hit());
                        }
                        busy_ns += t0.elapsed().as_nanos() as u64;
                        let mut buf = batch.refs;
                        buf.clear();
                        // Non-blocking recycle: a full freelist just drops
                        // the buffer (the router allocates a fresh one).
                        let _ = ftx.try_push(buf);
                    }
                    if let Some(reg) = &metrics {
                        reg.pipeline_worker_busy_ns.add(busy_ns);
                    }
                    group
                })
            })
            .collect();

        // ---- Router (this thread) ----
        let t_router = Instant::now();
        let router_rec = recorder.map(|r| r.register("router"));
        // Buffers start empty and grow on demand: a fleet arena routes over
        // thousands of slots, most of which may never see traffic, so
        // reserving `batch_size` entries per slot up front would waste
        // memory. Hot slots amortize to full capacity via recycling.
        let mut buffers: Vec<Vec<RoutedRef>> = (0..n_shards).map(|_| Vec::new()).collect();
        let mut keys_hashed = 0u64;
        let mut batches = 0u64;
        let mut stalls = 0u64;
        // Self-profiler hash attribution: the stretch between dispatches
        // is hashing + buffering, which no span covers.
        let mut hash_mark = router_rec.as_ref().map(|r| r.now_ns());
        let mut dispatch = |s: usize, refs: Vec<RoutedRef>| {
            let d = depth[s].fetch_add(1, Ordering::Relaxed) + 1;
            if let Some(reg) = metrics {
                reg.record_queue_depth(s, d);
            }
            batches += 1;
            let b0 = router_rec.as_ref().map(|r| r.now_ns());
            if let (Some(r), Some(m), Some(b0)) = (&router_rec, hash_mark, b0) {
                r.profile(ProfPhase::Hash, b0.saturating_sub(m));
            }
            let tx = &mut batch_txs[s % threads];
            if let Err(b) = tx.try_push(Batch { shard: s, refs }) {
                // Ring full even after refreshing the cached head: the
                // worker is behind. Spin/park until it drains one.
                stalls += 1;
                let s0 = router_rec.as_ref().map(|r| r.now_ns());
                tx.push(b);
                if let (Some(r), Some(s0)) = (&router_rec, s0) {
                    r.record_since(Phase::RouterStall, s0, s as u64);
                }
            }
            if let (Some(r), Some(b0)) = (&router_rec, b0) {
                r.record_since(Phase::RouterBatch, b0, s as u64);
                hash_mark = Some(r.now_ns());
            }
        };
        for (s, key, size, h) in items {
            keys_hashed += 1;
            buffers[s].push((key, size, h));
            if buffers[s].len() >= batch_size {
                let fresh = free_rxs[s % threads]
                    .try_pop()
                    .unwrap_or_else(|| Vec::with_capacity(batch_size));
                let full = std::mem::replace(&mut buffers[s], fresh);
                dispatch(s, full);
            }
        }
        for (s, buf) in buffers.into_iter().enumerate() {
            if !buf.is_empty() {
                dispatch(s, buf);
            }
        }
        // `dispatch` borrowed the producers; its last call is above, so the
        // borrow has ended and the rings can close: workers drain the
        // remaining batches and exit their pop loops.
        for tx in &mut batch_txs {
            tx.close();
        }
        if let Some(reg) = metrics {
            reg.pipeline_keys_hashed.add(keys_hashed);
            reg.pipeline_batches.add(batches);
            reg.pipeline_stalls.add(stalls);
            reg.pipeline_router_busy_ns
                .add(t_router.elapsed().as_nanos() as u64);
        }

        for (w, h) in handles.into_iter().enumerate() {
            regrouped[w] = Some(h.join().expect("pipeline worker panicked"));
        }
    });

    // Producers outlive the workers, so ring statistics are read after the
    // join — complete, race-free, and free on the hot path.
    if let Some(reg) = metrics {
        for (w, tx) in batch_txs.iter().enumerate() {
            reg.record_ring_depth(w, tx.depth_hwm());
            reg.pipeline_ring_wraps.add(tx.wraps());
            reg.pipeline_router_parks.add(tx.producer_parks());
            reg.pipeline_worker_parks.add(tx.consumer_parks());
        }
    }

    // Undo the round-robin grouping: worker w's slot i is shard w + i·T.
    let mut out: Vec<Option<KrrModel>> = (0..n_shards).map(|_| None).collect();
    for (w, group) in regrouped.into_iter().enumerate() {
        for (i, m) in group.expect("worker joined").into_iter().enumerate() {
            out[w + i * threads] = Some(m);
        }
    }
    out.into_iter()
        .map(|m| m.expect("every shard returned"))
        .collect()
}

/// [`run`] over the PR 6-era `sync_channel` transport — kept as the live
/// A/B baseline the ring pipeline is benchmarked against
/// (`benches/pipeline.rs`) and reachable via
/// [`crate::ShardedKrr::process_stream_channels`]. Same topology, same
/// bit-identity invariant; only the transport (bounded channels + an
/// unbounded recycle channel) and the per-reference worker loop differ.
pub(crate) fn run_channels<I>(
    models: Vec<KrrModel>,
    refs: I,
    threads: usize,
    cfg: &PipelineConfig,
    metrics: Option<&Arc<MetricsRegistry>>,
    recorder: Option<&Arc<FlightRecorder>>,
) -> Vec<KrrModel>
where
    I: Iterator<Item = (u64, u32)>,
{
    let n_shards = models.len();
    run_routed_channels(
        models,
        refs.map(|(key, size)| {
            let h = hash_key(key);
            (shard_of_hash(h, n_shards), key, size, h)
        }),
        threads,
        cfg,
        metrics,
        recorder,
    )
}

/// The legacy channel transport behind [`run_channels`]; see there.
pub(crate) fn run_routed_channels<I>(
    models: Vec<KrrModel>,
    items: I,
    threads: usize,
    cfg: &PipelineConfig,
    metrics: Option<&Arc<MetricsRegistry>>,
    recorder: Option<&Arc<FlightRecorder>>,
) -> Vec<KrrModel>
where
    I: Iterator<Item = (usize, u64, u32, u64)>,
{
    let n_shards = models.len();
    let threads = threads.clamp(1, n_shards);
    let batch_size = cfg.batch_size.max(1);
    let queue_depth = cfg.queue_depth.max(1);
    if let Some(reg) = metrics {
        reg.footprint_pipeline_bytes
            .set(cfg.buffer_bytes(n_shards) as u64);
    }

    let mut groups: Vec<Vec<KrrModel>> = (0..threads).map(|_| Vec::new()).collect();
    for (s, m) in models.into_iter().enumerate() {
        groups[s % threads].push(m);
    }

    let depth: Vec<AtomicU64> = (0..n_shards).map(|_| AtomicU64::new(0)).collect();
    let depth = &depth;

    let mut senders: Vec<SyncSender<Batch>> = Vec::with_capacity(threads);
    let mut receivers: Vec<Option<Receiver<Batch>>> = Vec::with_capacity(threads);
    for _ in 0..threads {
        let (tx, rx) = sync_channel::<Batch>(queue_depth);
        senders.push(tx);
        receivers.push(Some(rx));
    }
    let (recycle_tx, recycle_rx) = std::sync::mpsc::channel::<Vec<RoutedRef>>();

    let mut regrouped: Vec<Option<Vec<KrrModel>>> = (0..threads).map(|_| None).collect();
    std::thread::scope(|scope| {
        let handles: Vec<_> = groups
            .into_iter()
            .zip(receivers.iter_mut())
            .enumerate()
            .map(|(w, (mut group, rx))| {
                let rx = rx.take().expect("receiver consumed once");
                let recycle_tx = recycle_tx.clone();
                let metrics = metrics.cloned();
                let rec = recorder.map(|r| r.register(&format!("worker-{w}")));
                scope.spawn(move || {
                    let mut busy_ns = 0u64;
                    for batch in rx {
                        let t0 = Instant::now();
                        let r0 = rec.as_ref().map(|r| r.now_ns());
                        let model = &mut group[batch.shard / threads];
                        // Per-reference drain: the PR 6 worker loop, kept
                        // verbatim so the A/B isolates transport + batching.
                        for &(key, size, h) in &batch.refs {
                            model.access_hashed(key, size, h);
                        }
                        if let (Some(r), Some(r0)) = (&rec, r0) {
                            r.record_since(Phase::WorkerBatch, r0, batch.refs.len() as u64);
                        }
                        depth[batch.shard].fetch_sub(1, Ordering::Relaxed);
                        if let Some(reg) = &metrics {
                            reg.shard_access_n(batch.shard, batch.refs.len() as u64);
                            reg.set_shard_resident(batch.shard, model.stats().distinct);
                            reg.record_shard_depth(batch.shard, model.deepest_hit());
                        }
                        busy_ns += t0.elapsed().as_nanos() as u64;
                        let mut buf = batch.refs;
                        buf.clear();
                        let _ = recycle_tx.send(buf); // router may be gone
                    }
                    if let Some(reg) = &metrics {
                        reg.pipeline_worker_busy_ns.add(busy_ns);
                    }
                    group
                })
            })
            .collect();

        let t_router = Instant::now();
        let router_rec = recorder.map(|r| r.register("router"));
        let mut buffers: Vec<Vec<RoutedRef>> = (0..n_shards).map(|_| Vec::new()).collect();
        let mut keys_hashed = 0u64;
        let mut batches = 0u64;
        let mut stalls = 0u64;
        let mut dispatch = |s: usize, refs: Vec<RoutedRef>| {
            let d = depth[s].fetch_add(1, Ordering::Relaxed) + 1;
            if let Some(reg) = metrics {
                reg.record_queue_depth(s, d);
            }
            batches += 1;
            let b0 = router_rec.as_ref().map(|r| r.now_ns());
            match senders[s % threads].try_send(Batch { shard: s, refs }) {
                Ok(()) => {}
                Err(TrySendError::Full(b)) => {
                    stalls += 1;
                    let s0 = router_rec.as_ref().map(|r| r.now_ns());
                    senders[s % threads].send(b).expect("worker disappeared");
                    if let (Some(r), Some(s0)) = (&router_rec, s0) {
                        r.record_since(Phase::RouterStall, s0, s as u64);
                    }
                }
                Err(TrySendError::Disconnected(_)) => {
                    // A worker panicked; the scope will propagate it.
                    panic!("pipeline worker disconnected");
                }
            }
            if let (Some(r), Some(b0)) = (&router_rec, b0) {
                r.record_since(Phase::RouterBatch, b0, s as u64);
            }
        };
        for (s, key, size, h) in items {
            keys_hashed += 1;
            buffers[s].push((key, size, h));
            if buffers[s].len() >= batch_size {
                let fresh = recycle_rx
                    .try_recv()
                    .unwrap_or_else(|_| Vec::with_capacity(batch_size));
                let full = std::mem::replace(&mut buffers[s], fresh);
                dispatch(s, full);
            }
        }
        for (s, buf) in buffers.into_iter().enumerate() {
            if !buf.is_empty() {
                dispatch(s, buf);
            }
        }
        drop(senders);
        if let Some(reg) = metrics {
            reg.pipeline_keys_hashed.add(keys_hashed);
            reg.pipeline_batches.add(batches);
            reg.pipeline_stalls.add(stalls);
            reg.pipeline_router_busy_ns
                .add(t_router.elapsed().as_nanos() as u64);
        }

        for (w, h) in handles.into_iter().enumerate() {
            regrouped[w] = Some(h.join().expect("pipeline worker panicked"));
        }
    });

    let mut out: Vec<Option<KrrModel>> = (0..n_shards).map(|_| None).collect();
    for (w, group) in regrouped.into_iter().enumerate() {
        for (i, m) in group.expect("worker joined").into_iter().enumerate() {
            out[w + i * threads] = Some(m);
        }
    }
    out.into_iter()
        .map(|m| m.expect("every shard returned"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::KrrConfig;
    use crate::sharded::ShardedKrr;

    fn refs(n: usize, keys: u64, seed: u64) -> Vec<(u64, u32)> {
        let mut rng = crate::rng::Xoshiro256::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let u = rng.unit();
                ((u * u * keys as f64) as u64, 1)
            })
            .collect()
    }

    #[test]
    fn tiny_batches_force_recycling_and_stalls_still_exact() {
        let refs = refs(60_000, 4_000, 11);
        let cfg = KrrConfig::new(4.0).seed(3);
        let mut seq = ShardedKrr::new(&cfg, 5);
        for &(k, s) in &refs {
            seq.access(k, s);
        }
        // 16-entry batches over 60K refs exercise buffer recycling and
        // ring back-pressure heavily (queue_depth 1 -> 2-slot rings).
        let pcfg = PipelineConfig {
            batch_size: 16,
            queue_depth: 1,
        };
        let mut par = ShardedKrr::new(&cfg, 5);
        par.process_stream_with(refs.iter().copied(), 3, &pcfg);
        assert_eq!(par.mrc().points(), seq.mrc().points());
        assert_eq!(par.stats(), seq.stats());
    }

    #[test]
    fn degenerate_config_values_are_clamped() {
        let refs = refs(5_000, 500, 12);
        let cfg = KrrConfig::new(2.0).seed(4);
        let mut seq = ShardedKrr::new(&cfg, 3);
        for &(k, s) in &refs {
            seq.access(k, s);
        }
        let pcfg = PipelineConfig {
            batch_size: 0,
            queue_depth: 0,
        };
        let mut par = ShardedKrr::new(&cfg, 3);
        par.process_stream_with(refs.iter().copied(), 99, &pcfg);
        assert_eq!(par.mrc().points(), seq.mrc().points());
    }

    #[test]
    fn ring_and_channel_transports_agree_bit_for_bit() {
        let refs = refs(40_000, 3_000, 13);
        let cfg = KrrConfig::new(5.0).sampling(0.5).seed(6);
        for threads in [1, 3] {
            let mut rings = ShardedKrr::new(&cfg, 4);
            rings.process_stream(refs.iter().copied(), threads);
            let mut chans = ShardedKrr::new(&cfg, 4);
            chans.process_stream_channels(refs.iter().copied(), threads);
            assert_eq!(rings.mrc().points(), chans.mrc().points(), "{threads}t");
            assert_eq!(rings.stats(), chans.stats(), "{threads}t");
        }
    }
}
