//! Mattson's linear stack update, specialized to KRR (the paper's "Basic
//! Stack" baseline in Table 5.3).
//!
//! Walks every interior position once and performs an independent Bernoulli
//! draw with the stay probability `((i-1)/i)^K` of Eq. 4.1 — O(φ) per
//! update, which is exactly the cost the two fast updaters eliminate.

use crate::prob::stay_prob;
use crate::rng::Xoshiro256;

/// Appends the swap chain for distance `phi` by scanning positions
/// top-down. Returns the number of stack positions examined (here the full
/// interior, `phi - 1` — the O(φ) cost the fast updaters avoid).
pub fn naive_chain(phi: u64, k: f64, rng: &mut Xoshiro256, out: &mut Vec<u64>) -> u64 {
    debug_assert!(phi >= 2);
    out.push(1);
    for i in 2..phi {
        if rng.unit() >= stay_prob(i, k) {
            out.push(i);
        }
    }
    phi - 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn k_one_reproduces_mattsons_rr() {
        // For K=1 the stay probability of position i is (i-1)/i, so the
        // expected number of interior swaps over [2, φ-1] is the harmonic
        // tail H(φ-1) - 1.
        let phi = 500u64;
        let trials = 20_000;
        let mut rng = Xoshiro256::seed_from_u64(2);
        let mut total = 0usize;
        let mut out = Vec::new();
        for _ in 0..trials {
            out.clear();
            naive_chain(phi, 1.0, &mut rng, &mut out);
            total += out.len();
        }
        let harmonic: f64 = (1..phi).map(|i| 1.0 / i as f64).sum();
        let got = total as f64 / trials as f64;
        assert!(
            (got - harmonic).abs() / harmonic < 0.05,
            "got {got} vs H={harmonic}"
        );
    }

    #[test]
    fn huge_k_swaps_every_position() {
        let mut rng = Xoshiro256::seed_from_u64(3);
        let mut out = Vec::new();
        naive_chain(50, 1e9, &mut rng, &mut out);
        let expect: Vec<u64> = (1..50).collect();
        assert_eq!(out, expect);
    }
}
