//! Approach I: top-down stack update (§4.3.1, Algorithm 1).
//!
//! Interior swap positions over `[2, φ-1]` are independent Bernoulli events,
//! so the probability that an interval `[a, b]` contains *no* swap telescopes
//! to `((a-1)/b)^K`. The updater descends a conceptual binary state-space
//! tree: each node draws once to decide which half-intervals contain swaps,
//! conditioned on the parent containing at least one. Proposition 3 bounds
//! the expected number of visited nodes by O(K·log²M).
//!
//! Note: line 10 of the paper's pseudocode gates the recursion on
//! `random() > (1/φ)^K`, while the no-swap probability of the interior
//! interval `[2, φ-1]` is `(1/(φ-1))^K` by the paper's own telescoping
//! formula (the pseudocode folds the always-swapping position φ into the
//! interval). We use the exact interior probability so that all three
//! updaters sample the same distribution — verified against each other in
//! `update::tests`.

use crate::prob::no_swap_prob;
use crate::rng::Xoshiro256;

/// Appends the swap chain for distance `phi` using recursive interval
/// splitting. Emission order is ascending because the left child is always
/// explored before the right one. Returns the number of state-space tree
/// nodes visited (the quantity Proposition 3 bounds by O(K·log²M)).
pub fn topdown_chain(phi: u64, k: f64, rng: &mut Xoshiro256, out: &mut Vec<u64>) -> u64 {
    debug_assert!(phi >= 2);
    out.push(1);
    if phi < 3 {
        return 1;
    }
    let (lo, hi) = (2u64, phi - 1);
    let p_any = 1.0 - no_swap_prob(lo, hi, k);
    if rng.unit() >= p_any {
        return 1;
    }
    // Explicit DFS stack; pushing the right interval first makes the left
    // one pop first, so positions are emitted in ascending order.
    let mut visited = 1u64;
    let mut pending: Vec<(u64, u64)> = vec![(lo, hi)];
    while let Some((start, end)) = pending.pop() {
        debug_assert!(start <= end);
        visited += 1;
        if start == end {
            out.push(start);
            continue;
        }
        // mid = ⌈(start+end)/2⌉ splits into [start, mid-1] and [mid, end],
        // both non-empty when start < end.
        let mid = (start + end).div_ceil(2);
        let nsw1 = no_swap_prob(start, mid - 1, k);
        let nsw2 = no_swap_prob(mid, end, k);
        let sw1 = 1.0 - nsw1;
        let sw2 = 1.0 - nsw2;
        let only1 = sw1 * nsw2;
        let only2 = nsw1 * sw2;
        let both = sw1 * sw2;
        // Conditioned on >=1 swap in [start, end]; the three cases partition
        // that event.
        let weight = only1 + only2 + both;
        debug_assert!(weight > 0.0);
        let r = rng.unit() * weight;
        if r < only1 {
            pending.push((start, mid - 1));
        } else if r < only1 + only2 {
            pending.push((mid, end));
        } else {
            pending.push((mid, end));
            pending.push((start, mid - 1));
        }
    }
    visited
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn always_emits_position_one() {
        let mut rng = Xoshiro256::seed_from_u64(1);
        let mut out = Vec::new();
        for phi in 2..40u64 {
            out.clear();
            topdown_chain(phi, 2.0, &mut rng, &mut out);
            assert_eq!(out[0], 1);
        }
    }

    #[test]
    fn huge_k_selects_all_interior_positions() {
        let mut rng = Xoshiro256::seed_from_u64(2);
        let mut out = Vec::new();
        topdown_chain(33, 1e9, &mut rng, &mut out);
        let expect: Vec<u64> = (1..33).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn visited_node_count_is_polylogarithmic() {
        // Indirect check on Proposition 3: the chain length (a lower bound
        // on visited nodes) must be far below φ for large φ and small K.
        let mut rng = Xoshiro256::seed_from_u64(3);
        let mut out = Vec::new();
        let phi = 1 << 20;
        let k = 4.0;
        let mut total = 0;
        let trials = 200;
        for _ in 0..trials {
            out.clear();
            topdown_chain(phi, k, &mut rng, &mut out);
            total += out.len();
        }
        let mean = total as f64 / trials as f64;
        assert!(
            mean < 3.0 * k * (phi as f64).ln(),
            "mean chain length {mean} not O(K logM)"
        );
    }
}
