//! Approach II: backward stack update (§4.3.2, Algorithm 2).
//!
//! Swap positions are generated from `φ` back toward the stack top. The
//! object deposited at swap position `v_j` is the evictee of a KRR cache of
//! size `v_{j-1} − 1`, whose position CDF is `P(X ≤ i) = (i/C)^K` (Eq. 4.2);
//! each jump is therefore one inverse-CDF draw `⌈r^{1/K}·(i−1)⌉`. Every loop
//! iteration produces exactly one swap position, so the expected cost equals
//! the expected chain length, O(K·logM) by Corollary 1.
//!
//! For K = 1 this degenerates to Bilardi et al.'s D-RAND sampling for the
//! random-replacement stack.

#[cfg(test)]
use crate::prob::sample_eviction_position;
use crate::rng::Xoshiro256;

/// Appends the swap chain for distance `phi` by sampling backward jumps,
/// then reverses the buffer into ascending order. Returns the number of
/// positions examined, which for this updater equals the number of
/// inverse-CDF draws (= chain length, Corollary 1's cost).
pub fn backward_chain(phi: u64, k: f64, rng: &mut Xoshiro256, out: &mut Vec<u64>) -> u64 {
    debug_assert!(phi >= 2);
    let start = out.len();
    let inv_k = 1.0 / k;
    let mut i = phi;
    let mut scanned = 0u64;
    while i > 1 {
        // x = ⌈ r^(1/K) · (i-1) ⌉, r ∈ (0, 1]
        let r = rng.unit_open_low();
        let x = sample_eviction_position_inv(r, i - 1, inv_k);
        out.push(x);
        scanned += 1;
        i = x;
    }
    out[start..].reverse();
    scanned
}

/// Same as [`sample_eviction_position`] but takes `1/K` precomputed, saving
/// a division in the per-jump hot path.
#[inline]
fn sample_eviction_position_inv(r: f64, c: u64, inv_k: f64) -> u64 {
    debug_assert!(r > 0.0 && r <= 1.0);
    let x = (r.powf(inv_k) * c as f64).ceil() as u64;
    x.clamp(1, c)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inv_variant_matches_public_function() {
        for &c in &[1u64, 2, 9, 1000] {
            for &k in &[1.0f64, 2.0, 7.5] {
                for i in 1..200 {
                    let r = (i as f64) / 200.0;
                    assert_eq!(
                        sample_eviction_position_inv(r, c, 1.0 / k),
                        sample_eviction_position(r, c, k)
                    );
                }
            }
        }
    }

    #[test]
    fn chain_terminates_at_one() {
        let mut rng = Xoshiro256::seed_from_u64(7);
        let mut out = Vec::new();
        for phi in 2..100u64 {
            out.clear();
            backward_chain(phi, 5.0, &mut rng, &mut out);
            assert_eq!(out[0], 1);
            assert!(*out.last().unwrap() < phi);
        }
    }

    #[test]
    fn each_iteration_strictly_descends() {
        // i = x < previous i, so the loop provably terminates; verify the
        // emitted ascending chain is strictly increasing.
        let mut rng = Xoshiro256::seed_from_u64(8);
        let mut out = Vec::new();
        for _ in 0..500 {
            out.clear();
            backward_chain(10_000, 8.0, &mut rng, &mut out);
            assert!(out.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn cost_is_one_draw_per_swap() {
        // Chain length for phi = 2^20, K = 2 should be near Corollary 1's
        // expectation, i.e. tiny compared to phi.
        let mut rng = Xoshiro256::seed_from_u64(9);
        let mut out = Vec::new();
        let phi = 1u64 << 20;
        let k = 2.0;
        let trials = 300;
        let mut total = 0usize;
        for _ in 0..trials {
            out.clear();
            backward_chain(phi, k, &mut rng, &mut out);
            total += out.len();
        }
        let mean = total as f64 / trials as f64;
        let expect = crate::prob::expected_swaps_exact(phi, k);
        assert!(
            (mean - expect).abs() / expect < 0.1,
            "mean {mean} vs {expect}"
        );
    }
}
