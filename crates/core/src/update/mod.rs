//! Swap-chain generation strategies (§2.2, §4.3).
//!
//! A KRR stack update is fully described by its *swap chain*: the ascending
//! set of stack positions `1 = v_m < v_{m-1} < … < v_1 < φ` at which the
//! object carried down from above is deposited. Positions `1` and `φ` always
//! swap; each interior position `i ∈ [2, φ-1]` swaps independently with
//! probability `1 − ((i-1)/i)^K` (Eq. 4.1).
//!
//! The three strategies sample *identically distributed* chains:
//!
//! * `naive` — Mattson's linear scan, one Bernoulli draw per position,
//!   O(φ) per update. The paper's "Basic Stack" baseline.
//! * `topdown` — Approach I (Algorithm 1): recursive interval splitting,
//!   expected O(K·log²M) per update.
//! * `backward` — Approach II (Algorithm 2): inverse-CDF jumps from `φ`
//!   back to the top, expected O(K·logM) per update.
//!
//! Chains are emitted ascending, include position 1, and exclude the
//! implicit terminal swap at `φ`.

mod backward;
pub mod lut;
mod naive;
mod topdown;

pub use backward::backward_chain;
pub use naive::naive_chain;
pub use topdown::topdown_chain;

use crate::rng::Xoshiro256;

/// Which stack-update strategy to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum UpdaterKind {
    /// Linear Bernoulli scan (Mattson baseline), O(φ).
    Naive,
    /// Approach I: top-down interval splitting, O(K·log²M).
    TopDown,
    /// Approach II: backward inverse-CDF sampling, O(K·logM).
    #[default]
    Backward,
}

impl UpdaterKind {
    /// All strategies, for exhaustive testing.
    pub const ALL: [UpdaterKind; 3] = [
        UpdaterKind::Naive,
        UpdaterKind::TopDown,
        UpdaterKind::Backward,
    ];

    /// Stable one-byte tag used by the `krr-ckpt-v1` checkpoint format.
    #[must_use]
    pub fn to_tag(self) -> u8 {
        match self {
            UpdaterKind::Naive => 0,
            UpdaterKind::TopDown => 1,
            UpdaterKind::Backward => 2,
        }
    }

    /// Inverse of [`UpdaterKind::to_tag`]; `None` for unknown tags (e.g. a
    /// checkpoint written by a newer build).
    #[must_use]
    pub fn from_tag(tag: u8) -> Option<Self> {
        match tag {
            0 => Some(UpdaterKind::Naive),
            1 => Some(UpdaterKind::TopDown),
            2 => Some(UpdaterKind::Backward),
            _ => None,
        }
    }
}

impl std::fmt::Display for UpdaterKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            UpdaterKind::Naive => write!(f, "naive"),
            UpdaterKind::TopDown => write!(f, "top-down"),
            UpdaterKind::Backward => write!(f, "backward"),
        }
    }
}

/// Samples a swap chain for a reference at stack distance `phi` with
/// effective sampling size `k`, appending ascending positions to `out`.
/// Returns the number of stack positions the strategy examined (its work,
/// fed to the `positions_scanned` metric).
///
/// `out` is left empty when `phi <= 1` (a top-of-stack hit needs no update).
#[inline]
pub fn swap_chain(
    kind: UpdaterKind,
    phi: u64,
    k: f64,
    rng: &mut Xoshiro256,
    out: &mut Vec<u64>,
) -> u64 {
    debug_assert!(out.is_empty());
    if phi <= 1 {
        return 0;
    }
    match kind {
        UpdaterKind::Naive => naive_chain(phi, k, rng, out),
        UpdaterKind::TopDown => topdown_chain(phi, k, rng, out),
        UpdaterKind::Backward => backward_chain(phi, k, rng, out),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prob::stay_prob;

    fn chains_for(kind: UpdaterKind, phi: u64, k: f64, trials: usize) -> Vec<Vec<u64>> {
        let mut rng = Xoshiro256::seed_from_u64(kind as u64 + 1000);
        let mut out = Vec::new();
        (0..trials)
            .map(|_| {
                out.clear();
                swap_chain(kind, phi, k, &mut rng, &mut out);
                out.clone()
            })
            .collect()
    }

    #[test]
    fn chain_shape_invariants() {
        for kind in UpdaterKind::ALL {
            for &phi in &[2u64, 3, 4, 17, 100] {
                for chain in chains_for(kind, phi, 4.0, 200) {
                    assert_eq!(chain[0], 1, "{kind}: chain must start at 1");
                    assert!(chain.windows(2).all(|w| w[0] < w[1]), "{kind}: ascending");
                    assert!(*chain.last().unwrap() < phi, "{kind}: below phi");
                }
            }
        }
    }

    #[test]
    fn phi_one_yields_empty_chain() {
        for kind in UpdaterKind::ALL {
            let mut rng = Xoshiro256::seed_from_u64(5);
            let mut out = Vec::new();
            swap_chain(kind, 1, 4.0, &mut rng, &mut out);
            assert!(out.is_empty());
        }
    }

    #[test]
    fn phi_two_chain_is_always_just_position_one() {
        for kind in UpdaterKind::ALL {
            for chain in chains_for(kind, 2, 3.0, 100) {
                assert_eq!(chain, vec![1]);
            }
        }
    }

    /// The three strategies must produce identical per-position marginal swap
    /// probabilities: `P(i in chain) = 1 − ((i−1)/i)^K` for interior `i`.
    #[test]
    fn marginal_swap_probabilities_agree_with_theory() {
        let phi = 30u64;
        let trials = 60_000;
        for kind in UpdaterKind::ALL {
            for &k in &[1.0f64, 2.0, 5.0, 16.0] {
                let mut counts = vec![0u64; phi as usize];
                for chain in chains_for(kind, phi, k, trials) {
                    for &p in &chain {
                        counts[p as usize - 1] += 1;
                    }
                }
                assert_eq!(counts[0], trials as u64, "{kind}: position 1 always swaps");
                for i in 2..phi {
                    let expect = 1.0 - stay_prob(i, k);
                    let got = counts[i as usize - 1] as f64 / trials as f64;
                    let tol = 3.0 * (expect * (1.0 - expect) / trials as f64).sqrt() + 1e-3;
                    assert!(
                        (got - expect).abs() < tol,
                        "{kind} K={k} i={i}: got {got}, expected {expect}"
                    );
                }
            }
        }
    }

    /// Chains from different strategies must agree on the *joint* structure
    /// too; compare mean chain length with Corollary 1's exact expectation.
    #[test]
    fn mean_chain_length_matches_corollary_1() {
        let phi = 200u64;
        let trials = 30_000;
        for kind in UpdaterKind::ALL {
            for &k in &[1.0f64, 4.0, 8.0] {
                let total: usize = chains_for(kind, phi, k, trials).iter().map(Vec::len).sum();
                let got = total as f64 / trials as f64;
                // Chain includes forced position 1; interior expectation is
                // E[β] over [2, φ-1]: expected_swaps_exact counts x=1..φ-1
                // where the x=1 term is 1-0^K = 1, i.e. exactly our forced 1.
                let expect = crate::prob::expected_swaps_exact(phi, k);
                assert!(
                    (got - expect).abs() / expect < 0.03,
                    "{kind} K={k}: got {got}, expected {expect}"
                );
            }
        }
    }

    /// Pairwise-joint check: distribution of the *largest* interior swap
    /// position (which fully determines where the evictee of cache size φ−1
    /// comes from) must match `P(v ≤ j) = (j/(φ−1))^K` for all strategies.
    #[test]
    fn largest_swap_position_cdf_matches() {
        let phi = 40u64;
        let k = 6.0;
        let trials = 40_000;
        for kind in UpdaterKind::ALL {
            let mut hist = vec![0u64; phi as usize];
            for chain in chains_for(kind, phi, k, trials) {
                hist[*chain.last().unwrap() as usize - 1] += 1;
            }
            let mut cum = 0.0;
            for j in 1..phi {
                cum += hist[j as usize - 1] as f64 / trials as f64;
                let expect = crate::prob::eviction_position_cdf(j, phi - 1, k);
                assert!(
                    (cum - expect).abs() < 0.02,
                    "{kind} j={j}: cdf {cum} vs {expect}"
                );
            }
        }
    }
}
