//! Integer inverse-CDF lookup for small backward jumps.
//!
//! The backward updater's hot operation is `x = ⌈r^{1/K}·c⌉` with
//! `r = 1 − m·2⁻⁵³` drawn on the RNG's dyadic grid (`m` is the raw 53-bit
//! draw). Because each jump shrinks `c` by only ≈ `K/(K+1)`, a walk from
//! `φ` to 1 spends most of its draws at *small* `c` — and for small `c`
//! the result takes only values `1..=c`, so the whole powf-ceil pipeline
//! collapses to "which bucket does `m` fall in": precompute, for every
//! `c ≤ CMAX` and `j < c`, the smallest `m` whose position is `≤ j`, and
//! answer a draw with a couple of integer compares instead of a ~20 ns
//! `powf`.
//!
//! # Bit-exactness
//!
//! The cutoffs are found by binary-searching `m` over the full `2^53`
//! grid, evaluating the *original* float expression at each probe — so
//! wherever the float pipeline is locally monotone the table reproduces
//! it exactly. `powf`'s last-ulp wobble could only reorder results within
//! a few grid points of a cutoff (the boundary's slope bounds the
//! ambiguous window to ≲ 2K grid points; see `GUARD`'s margin), so any
//! draw landing within the `GUARD` band of a cutoff falls back to the original
//! float expression itself. Outside the bands the two computations
//! provably agree; inside them we never trust the table. The
//! `table_matches_float_pipeline_exhaustively` test hammers this across
//! the grid, and `fused_update_is_bit_identical` (stack suite) locks in
//! end-to-end equality.
//!
//! Tables depend only on `K`, so they are built once per distinct `K`
//! and shared process-wide (16 shards and every clone reuse one ~16 KiB
//! table).

use std::sync::{Arc, Mutex};

/// Largest jump base `c` the table covers; larger jumps use `powf`
/// directly. 64 captures the long small-`c` tail of every walk (expected
/// draws at `c ≤ 64` is `Σ min(1, K/c)` ≈ half the chain for typical
/// `K'`) while keeping the table at `Σ_{c≤64}(c−1) = 2016` entries.
pub const CMAX: u64 = 64;

/// Half-width, in grid points of `m`, of the band around each cutoff
/// inside which the table defers to the float pipeline. The genuinely
/// ambiguous window is ≲ `2K` points (≈ 19 for the default `K′ = 5^1.4`);
/// 4096 gives a ~200× margin and still makes fallbacks a ~10⁻⁹ event.
const GUARD: u64 = 1 << 12;

const M_SPAN: u64 = 1 << 53;

/// Precomputed inverse-CDF cutoffs for one effective sampling size `K`.
#[derive(Debug)]
pub struct InvCdfTable {
    inv_k: f64,
    /// Rows for `c = 2..=CMAX`, flattened; row `c` holds `c − 1` cutoffs
    /// in descending order: entry `j − 1` is the smallest `m` with
    /// position `≤ j` (`M_SPAN` when no such `m` exists).
    rows: Vec<u64>,
    /// `offsets[c]` = start of row `c` in `rows`.
    offsets: Vec<u32>,
}

/// The original float pipeline, verbatim: `⌈r^{1/K}·c⌉` clamped to
/// `[1, c]`, with `r` reconstructed from the raw draw exactly as
/// `Xoshiro256::unit_open_low` does.
#[inline]
fn position_float(m: u64, c: u64, inv_k: f64) -> u64 {
    let r = 1.0 - m as f64 * (1.0 / M_SPAN as f64);
    ((r.powf(inv_k) * c as f64).ceil() as u64).clamp(1, c)
}

impl InvCdfTable {
    fn build(k: f64) -> Self {
        let inv_k = 1.0 / k;
        let mut rows = Vec::with_capacity(((CMAX - 1) * CMAX / 2) as usize);
        let mut offsets = vec![0u32; CMAX as usize + 1];
        for c in 2..=CMAX {
            offsets[c as usize] = rows.len() as u32;
            for j in 1..c {
                // Smallest m with position(m) <= j; position is
                // nonincreasing in m (r falls as m rises).
                let (mut lo, mut hi) = (0u64, M_SPAN);
                while lo < hi {
                    let mid = lo + (hi - lo) / 2;
                    if position_float(mid, c, inv_k) <= j {
                        hi = mid;
                    } else {
                        lo = mid + 1;
                    }
                }
                rows.push(lo);
            }
            let row = &rows[offsets[c as usize] as usize..];
            debug_assert!(row.windows(2).all(|w| w[0] >= w[1]), "cutoffs descend");
        }
        Self {
            inv_k,
            rows,
            offsets,
        }
    }

    /// Shared table for sampling size `k`, built on first request and
    /// cached process-wide by `k`'s bit pattern.
    pub fn for_k(k: f64) -> Arc<Self> {
        static CACHE: Mutex<Vec<(u64, Arc<InvCdfTable>)>> = Mutex::new(Vec::new());
        let bits = k.to_bits();
        let mut cache = CACHE.lock().expect("table cache poisoned");
        if let Some((_, t)) = cache.iter().find(|(b, _)| *b == bits) {
            return Arc::clone(t);
        }
        let t = Arc::new(Self::build(k));
        cache.push((bits, Arc::clone(&t)));
        t
    }

    /// The jump position for raw draw `m` at base `c` (`2 ≤ c ≤ CMAX`):
    /// bit-identical to the original float pipeline, via integer compares
    /// except within the `GUARD` band of a cutoff.
    #[inline]
    pub fn position(&self, m: u64, c: u64) -> u64 {
        debug_assert!((2..=CMAX).contains(&c));
        let start = self.offsets[c as usize] as usize;
        let row = &self.rows[start..start + (c - 1) as usize];
        // Cutoffs descend, so {j : m < cutoff_j} is a prefix; the expected
        // scan from the high end is c/(K+1) ≈ a couple of steps.
        let mut count = row.len();
        while count > 0 && row[count - 1] <= m {
            count -= 1;
        }
        let near_lo = count < row.len() && m - row[count] < GUARD;
        let near_hi = count > 0 && row[count - 1] - m < GUARD;
        if near_lo || near_hi {
            return position_float(m, c, self.inv_k);
        }
        count as u64 + 1
    }

    /// Heap bytes of this (shared) table.
    #[must_use]
    pub fn memory_bytes(&self) -> usize {
        self.rows.capacity() * std::mem::size_of::<u64>()
            + self.offsets.capacity() * std::mem::size_of::<u32>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Xoshiro256;

    #[test]
    fn table_matches_float_pipeline_exhaustively() {
        let k = 5.0f64.powf(1.4);
        let t = InvCdfTable::for_k(k);
        let inv_k = 1.0 / k;
        let mut rng = Xoshiro256::seed_from_u64(42);
        for c in 2..=CMAX {
            for _ in 0..4_000 {
                let m = rng.next_u64() >> 11;
                assert_eq!(t.position(m, c), position_float(m, c, inv_k), "c={c} m={m}");
            }
        }
    }

    #[test]
    fn boundary_neighborhoods_agree() {
        // The guard band must hand every near-cutoff draw to the float
        // pipeline; probe each cutoff's immediate neighborhood.
        let k = 3.0;
        let t = InvCdfTable::for_k(k);
        let inv_k = 1.0 / k;
        for c in 2..=CMAX {
            let start = t.offsets[c as usize] as usize;
            for &cut in &t.rows[start..start + (c - 1) as usize] {
                for d in 0..4u64 {
                    for m in [cut.saturating_sub(d), (cut + d).min(M_SPAN - 1)] {
                        assert_eq!(t.position(m, c), position_float(m, c, inv_k));
                    }
                }
            }
        }
    }

    #[test]
    fn tables_are_shared_per_k() {
        let a = InvCdfTable::for_k(7.25);
        let b = InvCdfTable::for_k(7.25);
        assert!(Arc::ptr_eq(&a, &b));
        assert!(a.memory_bytes() > 0);
    }
}
