//! The KRR stack: an array-backed priority stack with a hash index
//! (§4.4 "Implementation").
//!
//! Objects live in a flat slot array indexed by a stable per-object *id*
//! (assigned at first reference, never changed), and the stack order is a
//! permutation over those ids: `perm[pos] = id` with its inverse
//! `inv[id] = pos`. A hash table maps each key to its id — and because ids
//! are stable, the hash table is written exactly once per distinct object,
//! at cold insertion. A stack *update* moves only the objects on the swap
//! chain produced by one of the [`crate::update`] strategies, and applying
//! the chain touches nothing but the two flat permutation arrays (no hash
//! writes on the hot path), which is what makes KRR cheap: the expected
//! chain length is `O(K·logM)` (Corollary 1).

use crate::checkpoint::{Dec, Enc};
use crate::hashing::KeyMap;
use crate::rng::Xoshiro256;
use crate::update::lut::{self, InvCdfTable};
use crate::update::{self, UpdaterKind};
use std::io;
use std::sync::Arc;

/// One object resident on the stack.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Entry {
    /// Object key.
    pub key: u64,
    /// Object size in bytes (1 for uniform-size workloads).
    pub size: u32,
}

/// Outcome of a single reference processed by [`KrrStack::access`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Access {
    /// First reference to the key. `stack_len` is the number of distinct
    /// objects *after* the insertion (the paper's `γ_t`); the cold object is
    /// attached to the stack end before the update, so its `φ = stack_len`.
    Cold {
        /// Distinct objects on the stack after insertion.
        stack_len: u64,
    },
    /// Re-reference. `phi` is the 1-based stack position the object occupied
    /// before the update — its (object-granularity) stack distance.
    Hit {
        /// Stack distance of the reference.
        phi: u64,
    },
}

impl Access {
    /// Stack position the referenced object occupied before the update
    /// (equal to the stack length for cold misses).
    #[must_use]
    pub fn phi(&self) -> u64 {
        match *self {
            Access::Cold { stack_len } => stack_len,
            Access::Hit { phi } => phi,
        }
    }

    /// True if this was the first reference to the key.
    #[must_use]
    pub fn is_cold(&self) -> bool {
        matches!(self, Access::Cold { .. })
    }
}

/// The KRR priority stack.
///
/// `k` is the *effective* sampling size used by the swap probabilities —
/// callers modeling a K-LRU cache with sampling size `K` should pass
/// `K′ = K^1.4` (see [`crate::prob::k_prime`]).
#[derive(Debug, Clone)]
pub struct KrrStack {
    /// Objects by stable id (insertion order). `slots[id]` never moves.
    slots: Vec<Entry>,
    /// Stack order: `perm[pos] = id` (0-based positions, top first).
    perm: Vec<u32>,
    /// Inverse permutation: `inv[id] = pos` (0-based).
    inv: Vec<u32>,
    /// Key → id. Written once per distinct object, at cold insertion —
    /// never on the swap-chain hot path.
    index: KeyMap<u32>,
    k: f64,
    updater: UpdaterKind,
    rng: Xoshiro256,
    chain: Vec<u64>,
    chain_sizes: Vec<u32>,
    /// Whether updates capture [`Self::last_chain_sizes`]. Only the
    /// byte-level `sizeArray` maintenance needs them; uniform-size callers
    /// turn this off to skip the per-chain-element size gather.
    record_chain_sizes: bool,
    /// Whether updates materialize [`Self::last_chain`]. On by default;
    /// [`crate::KrrModel`] turns it off when nothing observes chains
    /// (no metrics, no recorder, no `sizeArray`), unlocking the fused
    /// backward update that samples and applies each swap in one pass.
    record_chain: bool,
    /// Shared small-`c` inverse-CDF cutoff table ([`InvCdfTable`]), built
    /// lazily on the first fused update and cached process-wide per `k`.
    lut: Option<Arc<InvCdfTable>>,
    last_scanned: u64,
}

impl KrrStack {
    /// Creates an empty stack with effective sampling size `k`, the given
    /// update strategy, and a deterministic RNG seed.
    #[must_use]
    pub fn new(k: f64, updater: UpdaterKind, seed: u64) -> Self {
        assert!(k >= 1.0, "effective sampling size must be >= 1, got {k}");
        Self {
            slots: Vec::new(),
            perm: Vec::new(),
            inv: Vec::new(),
            index: KeyMap::default(),
            k,
            updater,
            rng: Xoshiro256::seed_from_u64(seed),
            chain: Vec::new(),
            chain_sizes: Vec::new(),
            record_chain_sizes: true,
            record_chain: true,
            lut: None,
            last_scanned: 0,
        }
    }

    /// Enables or disables capturing [`Self::last_chain_sizes`] on each
    /// update (on by default). Uniform-size profiling never reads them, so
    /// [`crate::KrrModel`] switches this off unless a `sizeArray` is
    /// attached.
    pub fn set_record_chain_sizes(&mut self, on: bool) {
        self.record_chain_sizes = on;
    }

    /// Enables or disables materializing [`Self::last_chain`] on each
    /// update (on by default). With chains unobserved (off, and chain
    /// sizes off too) the backward updater runs *fused*: each inverse-CDF
    /// draw is applied to the permutation immediately, skipping the chain
    /// buffer, its reversal, and the second pass — same RNG stream, same
    /// swaps, measurably faster. [`Self::last_chain`] reads empty for
    /// accesses that took the fused path ([`Self::last_scanned`] is still
    /// maintained).
    pub fn set_record_chain(&mut self, on: bool) {
        self.record_chain = on;
    }

    /// Number of distinct objects on the stack (the paper's `γ_t` / `M`).
    #[must_use]
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True if no object has been referenced yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Effective sampling size `K′` in use.
    #[must_use]
    pub fn k(&self) -> f64 {
        self.k
    }

    /// Current 1-based stack position of `key`, if present.
    #[must_use]
    pub fn position_of(&self, key: u64) -> Option<u64> {
        self.index
            .get(&key)
            .map(|&id| u64::from(self.inv[id as usize]) + 1)
    }

    /// Entry at 1-based stack position `pos`.
    #[must_use]
    pub fn entry_at(&self, pos: u64) -> Option<&Entry> {
        self.perm
            .get(pos as usize - 1)
            .map(|&id| &self.slots[id as usize])
    }

    /// The swap chain of the most recent [`KrrStack::access`]: strictly
    /// ascending 1-based positions starting at 1, excluding the implicit
    /// terminal swap at `φ`. Empty when the last access had `φ = 1` (or no
    /// access has happened).
    #[must_use]
    pub fn last_chain(&self) -> &[u64] {
        &self.chain
    }

    /// Pre-update sizes of the entries that sat at [`Self::last_chain`]
    /// positions, parallel to `last_chain()`. Needed by the byte-level
    /// `sizeArray` maintenance (§4.4.1).
    #[must_use]
    pub fn last_chain_sizes(&self) -> &[u32] {
        &self.chain_sizes
    }

    /// Stack positions the update strategy examined during the most recent
    /// [`KrrStack::access`] — the per-update work metric (chain length for
    /// the backward updater, visited tree nodes for top-down, `φ − 1` for
    /// the naive scan).
    #[must_use]
    pub fn last_scanned(&self) -> u64 {
        self.last_scanned
    }

    /// Processes one reference: finds the object's stack distance, samples a
    /// swap chain with the configured strategy, and applies the cyclic shift
    /// that moves the referenced object to the stack top.
    pub fn access(&mut self, key: u64, size: u32) -> Access {
        let (phi, result) = match self.index.get(&key) {
            Some(&id) => {
                let phi = u64::from(self.inv[id as usize]) + 1;
                // An object's recorded size may change on re-reference
                // (e.g. an overwriting SET); keep the stack's view current.
                self.slots[id as usize].size = size;
                (phi, Access::Hit { phi })
            }
            None => {
                let pos = self.slots.len() as u64 + 1;
                assert!(pos <= u64::from(u32::MAX), "stack exceeds u32 index space");
                // A new object's id equals its initial (bottom) position.
                let id = (pos - 1) as u32;
                self.slots.push(Entry { key, size });
                self.perm.push(id);
                self.inv.push(id);
                self.index.insert(key, id);
                (pos, Access::Cold { stack_len: pos })
            }
        };
        self.update(phi);
        result
    }

    /// Samples the swap chain for a reference at stack distance `phi` and
    /// applies it.
    fn update(&mut self, phi: u64) {
        self.chain.clear();
        self.chain_sizes.clear();
        self.last_scanned = 0;
        if phi <= 1 {
            return;
        }
        if !self.record_chain && !self.record_chain_sizes && self.updater == UpdaterKind::Backward {
            self.update_fused_backward(phi);
            return;
        }
        self.last_scanned =
            update::swap_chain(self.updater, phi, self.k, &mut self.rng, &mut self.chain);
        debug_assert!(self.chain.first() == Some(&1));
        debug_assert!(self.chain.windows(2).all(|w| w[0] < w[1]));
        debug_assert!(*self.chain.last().unwrap() < phi);

        // Record pre-update sizes for sizeArray maintenance (skipped in
        // uniform-size mode), then perform the cyclic shift: the entry at
        // chain[j] moves down to chain[j+1] (the last one moves to φ) and
        // the referenced object moves to the top. Only the two permutation
        // arrays are touched — ids are stable, so the key index needs no
        // updates here.
        if self.record_chain_sizes {
            self.chain_sizes.extend(
                self.chain
                    .iter()
                    .map(|&p| self.slots[self.perm[p as usize - 1] as usize].size),
            );
        }

        let id_ref = self.perm[phi as usize - 1];
        let mut dest = phi as usize;
        for &src in self.chain.iter().rev() {
            let src = src as usize;
            let id = self.perm[src - 1];
            self.perm[dest - 1] = id;
            self.inv[id as usize] = (dest - 1) as u32;
            dest = src;
        }
        debug_assert_eq!(dest, 1);
        self.perm[0] = id_ref;
        self.inv[id_ref as usize] = 0;
    }

    /// The backward update with sampling and application fused into one
    /// pass: Algorithm 2 generates swap positions from `φ` back toward the
    /// top — exactly the order the cyclic shift applies them in — so when
    /// no observer needs the chain materialized, each draw moves its entry
    /// immediately. Draw-for-draw identical to `backward_chain` + the
    /// two-pass apply (same `unit_open_low` stream, same
    /// `⌈r^{1/K}·(i−1)⌉` positions), which `fused_update_is_bit_identical`
    /// locks in.
    fn update_fused_backward(&mut self, phi: u64) {
        if self.lut.is_none() {
            self.lut = Some(InvCdfTable::for_k(self.k));
        }
        let table = self.lut.as_deref().expect("table just built");
        let inv_k = 1.0 / self.k;
        let id_ref = self.perm[phi as usize - 1];
        let mut dest = phi;
        let mut scanned = 0u64;
        while dest > 1 {
            let c = dest - 1;
            // One 53-bit draw per jump, answered three ways that are all
            // bit-identical to `unit_open_low` + the powf formula: c = 1 is
            // always position 1, small c comes from the integer cutoff
            // table, large c evaluates the float pipeline directly.
            let m = self.rng.next_u64() >> 11;
            let x = if c == 1 {
                1
            } else if c <= lut::CMAX {
                table.position(m, c)
            } else {
                let r = 1.0 - m as f64 * (1.0 / (1u64 << 53) as f64);
                ((r.powf(inv_k) * c as f64).ceil() as u64).clamp(1, c)
            };
            scanned += 1;
            let id = self.perm[x as usize - 1];
            self.perm[dest as usize - 1] = id;
            self.inv[id as usize] = (dest - 1) as u32;
            dest = x;
        }
        self.perm[0] = id_ref;
        self.inv[id_ref as usize] = 0;
        self.last_scanned = scanned;
    }

    /// Iterates entries from stack top to bottom (test/diagnostic use).
    pub fn iter(&self) -> impl Iterator<Item = &Entry> {
        self.perm.iter().map(|&id| &self.slots[id as usize])
    }

    /// Serializes the stack into a `krr-ckpt-v1` payload: `k`, updater tag,
    /// RNG state, and the entry array in stack order. The id/permutation
    /// split and the key index are in-memory layout, re-derivable from
    /// stack order, and not stored — the wire bytes are identical to the
    /// pre-permutation format. Per-access scratch (the last swap chain) is
    /// transient and not stored.
    pub fn save_state(&self, enc: &mut Enc) {
        enc.put_f64(self.k).put_u8(self.updater.to_tag());
        for w in self.rng.state() {
            enc.put_u64(w);
        }
        enc.put_u64(self.perm.len() as u64);
        for e in self.iter() {
            enc.put_u64(e.key).put_u32(e.size);
        }
    }

    /// Reconstructs a stack from a [`KrrStack::save_state`] payload,
    /// rebuilding the key index from the entry array and resuming the RNG
    /// stream exactly where it left off.
    pub fn load_state(dec: &mut Dec<'_>) -> io::Result<Self> {
        let k = dec.f64()?;
        let updater = UpdaterKind::from_tag(dec.u8()?).ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                "unknown updater tag in checkpoint",
            )
        })?;
        let rng = Xoshiro256::from_state([dec.u64()?, dec.u64()?, dec.u64()?, dec.u64()?]);
        let n = dec.u64()?;
        let n = usize::try_from(n)
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "stack length overflow"))?;
        // The payload lists entries in stack order; assign ids in that
        // order, so the restored permutation starts out as the identity.
        let mut slots = Vec::with_capacity(n);
        let mut index = KeyMap::default();
        for i in 0..n {
            let key = dec.u64()?;
            let size = dec.u32()?;
            slots.push(Entry { key, size });
            index.insert(key, i as u32);
        }
        if index.len() != slots.len() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "duplicate key in checkpointed stack",
            ));
        }
        Ok(Self {
            perm: (0..n as u32).collect(),
            inv: (0..n as u32).collect(),
            slots,
            index,
            k,
            updater,
            rng,
            chain: Vec::new(),
            chain_sizes: Vec::new(),
            record_chain_sizes: true,
            record_chain: true,
            lut: None,
            last_scanned: 0,
        })
    }

    /// Estimated heap footprint in bytes: the slot array, the two
    /// permutation arrays, and the key index (§5.6's space-cost
    /// accounting).
    #[must_use]
    pub fn memory_bytes(&self) -> usize {
        let entries = self.slots.capacity() * std::mem::size_of::<Entry>()
            + self.perm.capacity() * std::mem::size_of::<u32>()
            + self.inv.capacity() * std::mem::size_of::<u32>();
        // hashbrown stores (key, value) pairs plus one control byte per
        // slot at ~8/7 slack.
        let index = self.index.capacity() * (std::mem::size_of::<(u64, u32)>() + 1) * 8 / 7;
        entries + index
    }
}

impl crate::footprint::Footprint for KrrStack {
    /// The §5.6 space breakdown: the entry storage (slots plus both
    /// permutation arrays), the key index (same model as
    /// [`KrrStack::memory_bytes`]), and the reusable swap-chain scratch
    /// buffers.
    fn footprint(&self) -> crate::footprint::FootprintReport {
        let mut r = crate::footprint::FootprintReport::new();
        r.add(
            "stack_entries",
            self.slots.capacity() * std::mem::size_of::<Entry>()
                + self.perm.capacity() * std::mem::size_of::<u32>()
                + self.inv.capacity() * std::mem::size_of::<u32>(),
        )
        .add(
            "stack_index",
            crate::footprint::map_bytes(self.index.capacity(), std::mem::size_of::<(u64, u32)>()),
        )
        .add(
            "stack_scratch",
            self.chain.capacity() * std::mem::size_of::<u64>()
                + self.chain_sizes.capacity() * std::mem::size_of::<u32>(),
        );
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stack(k: f64, updater: UpdaterKind) -> KrrStack {
        KrrStack::new(k, updater, 0xDEAD_BEEF)
    }

    #[test]
    fn cold_misses_report_growing_stack() {
        let mut s = stack(4.0, UpdaterKind::Backward);
        for key in 0..100u64 {
            match s.access(key, 1) {
                Access::Cold { stack_len } => assert_eq!(stack_len, key + 1),
                Access::Hit { .. } => panic!("unexpected hit"),
            }
        }
        assert_eq!(s.len(), 100);
    }

    #[test]
    fn referenced_object_moves_to_top() {
        for updater in [
            UpdaterKind::Naive,
            UpdaterKind::TopDown,
            UpdaterKind::Backward,
        ] {
            let mut s = stack(4.0, updater);
            for key in 0..50u64 {
                s.access(key, 1);
                assert_eq!(s.position_of(key), Some(1), "{updater:?}");
            }
            s.access(17, 1);
            assert_eq!(s.position_of(17), Some(1));
        }
    }

    #[test]
    fn stack_remains_a_permutation() {
        for updater in [
            UpdaterKind::Naive,
            UpdaterKind::TopDown,
            UpdaterKind::Backward,
        ] {
            let mut s = stack(3.0, updater);
            let mut rng = Xoshiro256::seed_from_u64(1);
            for _ in 0..5000 {
                let key = rng.below(200);
                s.access(key, 1);
            }
            assert_eq!(s.len(), 200);
            let mut seen = std::collections::HashSet::new();
            for (i, e) in s.iter().enumerate() {
                assert!(seen.insert(e.key), "duplicate key {} ({updater:?})", e.key);
                assert_eq!(
                    s.position_of(e.key),
                    Some(i as u64 + 1),
                    "index out of sync"
                );
            }
        }
    }

    #[test]
    fn immediate_rereference_has_distance_one() {
        let mut s = stack(2.0, UpdaterKind::Backward);
        s.access(1, 1);
        assert_eq!(s.access(1, 1), Access::Hit { phi: 1 });
    }

    #[test]
    fn large_k_behaves_like_lru() {
        // With a huge effective K every interior position swaps, so the
        // stack order equals exact LRU recency order.
        let mut s = stack(1e6, UpdaterKind::Backward);
        for key in 0..20u64 {
            s.access(key, 1);
        }
        s.access(5, 1);
        // LRU order now: 5, 19, 18, ..., 6, 4, 3, 2, 1, 0
        let order: Vec<u64> = s.iter().map(|e| e.key).collect();
        let mut expect = vec![5];
        expect.extend((6..20).rev());
        expect.extend((0..5).rev());
        assert_eq!(order, expect);
    }

    #[test]
    fn hit_distance_matches_position() {
        let mut s = stack(4.0, UpdaterKind::TopDown);
        for key in 0..30u64 {
            s.access(key, 1);
        }
        let pos = s.position_of(3).unwrap();
        assert_eq!(s.access(3, 1), Access::Hit { phi: pos });
    }

    #[test]
    fn size_updates_on_rereference() {
        let mut s = stack(2.0, UpdaterKind::Backward);
        s.access(7, 100);
        s.access(7, 250);
        assert_eq!(s.entry_at(1).unwrap().size, 250);
    }

    #[test]
    fn save_load_resumes_bit_identically() {
        for updater in UpdaterKind::ALL {
            let mut a = stack(5.0, updater);
            let mut rng = Xoshiro256::seed_from_u64(2);
            for _ in 0..3000 {
                a.access(rng.below(300), 1);
            }
            let mut enc = Enc::new();
            a.save_state(&mut enc);
            let bytes = enc.into_bytes();
            let mut b = KrrStack::load_state(&mut Dec::new(&bytes)).unwrap();
            for _ in 0..3000 {
                let key = rng.below(300);
                assert_eq!(a.access(key, 1), b.access(key, 1), "{updater:?}");
            }
            let ea: Vec<_> = a.iter().collect();
            let eb: Vec<_> = b.iter().collect();
            assert_eq!(ea, eb, "{updater:?}");
        }
    }

    #[test]
    fn fused_update_is_bit_identical() {
        // Same seed, same reference sequence: the fused backward update
        // must consume the identical RNG stream and land every object on
        // the identical position as the materialize-then-apply path.
        let k = 5.0f64.powf(1.4);
        let mut generic = stack(k, UpdaterKind::Backward);
        let mut fused = stack(k, UpdaterKind::Backward);
        fused.set_record_chain(false);
        fused.set_record_chain_sizes(false);
        let mut rng = Xoshiro256::seed_from_u64(3);
        for _ in 0..20_000 {
            let key = rng.below(800);
            assert_eq!(generic.access(key, 1), fused.access(key, 1));
            assert_eq!(generic.last_scanned(), fused.last_scanned());
        }
        let a: Vec<_> = generic.iter().collect();
        let b: Vec<_> = fused.iter().collect();
        assert_eq!(a, b);
    }

    #[test]
    fn chain_sizes_parallel_chain() {
        let mut s = stack(8.0, UpdaterKind::Backward);
        for key in 0..200u64 {
            s.access(key, (key % 7 + 1) as u32);
        }
        s.access(0, 1); // deep hit -> non-trivial chain
        assert_eq!(s.last_chain().len(), s.last_chain_sizes().len());
        assert!(!s.last_chain().is_empty());
    }
}
