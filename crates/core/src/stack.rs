//! The KRR stack: an array-backed priority stack with a hash index
//! (§4.4 "Implementation").
//!
//! Objects live in a flat array ordered by stack position (index 0 is the
//! stack top, position 1 in the paper's 1-based notation). A hash table maps
//! each key to its array slot, so the stack distance of a reference is an
//! O(1) lookup. A stack *update* moves only the objects on the swap chain
//! produced by one of the [`crate::update`] strategies, which is what makes
//! KRR cheap: the expected chain length is `O(K·logM)` (Corollary 1).

use crate::checkpoint::{Dec, Enc};
use crate::hashing::KeyMap;
use crate::rng::Xoshiro256;
use crate::update::{self, UpdaterKind};
use std::io;

/// One object resident on the stack.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Entry {
    /// Object key.
    pub key: u64,
    /// Object size in bytes (1 for uniform-size workloads).
    pub size: u32,
}

/// Outcome of a single reference processed by [`KrrStack::access`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Access {
    /// First reference to the key. `stack_len` is the number of distinct
    /// objects *after* the insertion (the paper's `γ_t`); the cold object is
    /// attached to the stack end before the update, so its `φ = stack_len`.
    Cold {
        /// Distinct objects on the stack after insertion.
        stack_len: u64,
    },
    /// Re-reference. `phi` is the 1-based stack position the object occupied
    /// before the update — its (object-granularity) stack distance.
    Hit {
        /// Stack distance of the reference.
        phi: u64,
    },
}

impl Access {
    /// Stack position the referenced object occupied before the update
    /// (equal to the stack length for cold misses).
    #[must_use]
    pub fn phi(&self) -> u64 {
        match *self {
            Access::Cold { stack_len } => stack_len,
            Access::Hit { phi } => phi,
        }
    }

    /// True if this was the first reference to the key.
    #[must_use]
    pub fn is_cold(&self) -> bool {
        matches!(self, Access::Cold { .. })
    }
}

/// The KRR priority stack.
///
/// `k` is the *effective* sampling size used by the swap probabilities —
/// callers modeling a K-LRU cache with sampling size `K` should pass
/// `K′ = K^1.4` (see [`crate::prob::k_prime`]).
#[derive(Debug, Clone)]
pub struct KrrStack {
    entries: Vec<Entry>,
    index: KeyMap<u32>,
    k: f64,
    updater: UpdaterKind,
    rng: Xoshiro256,
    chain: Vec<u64>,
    chain_sizes: Vec<u32>,
    last_scanned: u64,
}

impl KrrStack {
    /// Creates an empty stack with effective sampling size `k`, the given
    /// update strategy, and a deterministic RNG seed.
    #[must_use]
    pub fn new(k: f64, updater: UpdaterKind, seed: u64) -> Self {
        assert!(k >= 1.0, "effective sampling size must be >= 1, got {k}");
        Self {
            entries: Vec::new(),
            index: KeyMap::default(),
            k,
            updater,
            rng: Xoshiro256::seed_from_u64(seed),
            chain: Vec::new(),
            chain_sizes: Vec::new(),
            last_scanned: 0,
        }
    }

    /// Number of distinct objects on the stack (the paper's `γ_t` / `M`).
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if no object has been referenced yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Effective sampling size `K′` in use.
    #[must_use]
    pub fn k(&self) -> f64 {
        self.k
    }

    /// Current 1-based stack position of `key`, if present.
    #[must_use]
    pub fn position_of(&self, key: u64) -> Option<u64> {
        self.index.get(&key).map(|&i| u64::from(i) + 1)
    }

    /// Entry at 1-based stack position `pos`.
    #[must_use]
    pub fn entry_at(&self, pos: u64) -> Option<&Entry> {
        self.entries.get(pos as usize - 1)
    }

    /// The swap chain of the most recent [`KrrStack::access`]: strictly
    /// ascending 1-based positions starting at 1, excluding the implicit
    /// terminal swap at `φ`. Empty when the last access had `φ = 1` (or no
    /// access has happened).
    #[must_use]
    pub fn last_chain(&self) -> &[u64] {
        &self.chain
    }

    /// Pre-update sizes of the entries that sat at [`Self::last_chain`]
    /// positions, parallel to `last_chain()`. Needed by the byte-level
    /// `sizeArray` maintenance (§4.4.1).
    #[must_use]
    pub fn last_chain_sizes(&self) -> &[u32] {
        &self.chain_sizes
    }

    /// Stack positions the update strategy examined during the most recent
    /// [`KrrStack::access`] — the per-update work metric (chain length for
    /// the backward updater, visited tree nodes for top-down, `φ − 1` for
    /// the naive scan).
    #[must_use]
    pub fn last_scanned(&self) -> u64 {
        self.last_scanned
    }

    /// Processes one reference: finds the object's stack distance, samples a
    /// swap chain with the configured strategy, and applies the cyclic shift
    /// that moves the referenced object to the stack top.
    pub fn access(&mut self, key: u64, size: u32) -> Access {
        let (phi, result) = match self.index.get(&key) {
            Some(&i) => {
                let phi = u64::from(i) + 1;
                // An object's recorded size may change on re-reference
                // (e.g. an overwriting SET); keep the stack's view current.
                self.entries[i as usize].size = size;
                (phi, Access::Hit { phi })
            }
            None => {
                let pos = self.entries.len() as u64 + 1;
                assert!(pos <= u64::from(u32::MAX), "stack exceeds u32 index space");
                self.entries.push(Entry { key, size });
                self.index.insert(key, (pos - 1) as u32);
                (pos, Access::Cold { stack_len: pos })
            }
        };
        self.update(phi);
        result
    }

    /// Samples the swap chain for a reference at stack distance `phi` and
    /// applies it.
    fn update(&mut self, phi: u64) {
        self.chain.clear();
        self.chain_sizes.clear();
        self.last_scanned = 0;
        if phi <= 1 {
            return;
        }
        self.last_scanned =
            update::swap_chain(self.updater, phi, self.k, &mut self.rng, &mut self.chain);
        debug_assert!(self.chain.first() == Some(&1));
        debug_assert!(self.chain.windows(2).all(|w| w[0] < w[1]));
        debug_assert!(*self.chain.last().unwrap() < phi);

        // Record pre-update sizes for sizeArray maintenance, then perform the
        // cyclic shift: entry at chain[j] moves down to chain[j+1] (the last
        // one moves to φ) and the referenced object moves to the top.
        self.chain_sizes.extend(
            self.chain
                .iter()
                .map(|&p| self.entries[p as usize - 1].size),
        );

        let referenced = self.entries[phi as usize - 1];
        let mut dest = phi;
        for &src in self.chain.iter().rev() {
            let moved = self.entries[src as usize - 1];
            self.entries[dest as usize - 1] = moved;
            self.index.insert(moved.key, (dest - 1) as u32);
            dest = src;
        }
        debug_assert_eq!(dest, 1);
        self.entries[0] = referenced;
        self.index.insert(referenced.key, 0);
    }

    /// Iterates entries from stack top to bottom (test/diagnostic use).
    pub fn iter(&self) -> impl Iterator<Item = &Entry> {
        self.entries.iter()
    }

    /// Serializes the stack into a `krr-ckpt-v1` payload: `k`, updater tag,
    /// RNG state, and the entry array in stack order. The key index is
    /// derivable and not stored; per-access scratch (the last swap chain) is
    /// transient and not stored.
    pub fn save_state(&self, enc: &mut Enc) {
        enc.put_f64(self.k).put_u8(self.updater.to_tag());
        for w in self.rng.state() {
            enc.put_u64(w);
        }
        enc.put_u64(self.entries.len() as u64);
        for e in &self.entries {
            enc.put_u64(e.key).put_u32(e.size);
        }
    }

    /// Reconstructs a stack from a [`KrrStack::save_state`] payload,
    /// rebuilding the key index from the entry array and resuming the RNG
    /// stream exactly where it left off.
    pub fn load_state(dec: &mut Dec<'_>) -> io::Result<Self> {
        let k = dec.f64()?;
        let updater = UpdaterKind::from_tag(dec.u8()?).ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                "unknown updater tag in checkpoint",
            )
        })?;
        let rng = Xoshiro256::from_state([dec.u64()?, dec.u64()?, dec.u64()?, dec.u64()?]);
        let n = dec.u64()?;
        let n = usize::try_from(n)
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "stack length overflow"))?;
        let mut entries = Vec::with_capacity(n);
        let mut index = KeyMap::default();
        for i in 0..n {
            let key = dec.u64()?;
            let size = dec.u32()?;
            entries.push(Entry { key, size });
            index.insert(key, i as u32);
        }
        if index.len() != entries.len() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "duplicate key in checkpointed stack",
            ));
        }
        Ok(Self {
            entries,
            index,
            k,
            updater,
            rng,
            chain: Vec::new(),
            chain_sizes: Vec::new(),
            last_scanned: 0,
        })
    }

    /// Estimated heap footprint in bytes: the entry array plus the key
    /// index (§5.6's space-cost accounting).
    #[must_use]
    pub fn memory_bytes(&self) -> usize {
        let entries = self.entries.capacity() * std::mem::size_of::<Entry>();
        // hashbrown stores (key, value) pairs plus one control byte per
        // slot at ~8/7 slack.
        let index = self.index.capacity() * (std::mem::size_of::<(u64, u32)>() + 1) * 8 / 7;
        entries + index
    }
}

impl crate::footprint::Footprint for KrrStack {
    /// The §5.6 space breakdown: the entry array, the key index (same
    /// model as [`KrrStack::memory_bytes`]), and the reusable swap-chain
    /// scratch buffers.
    fn footprint(&self) -> crate::footprint::FootprintReport {
        let mut r = crate::footprint::FootprintReport::new();
        r.add(
            "stack_entries",
            self.entries.capacity() * std::mem::size_of::<Entry>(),
        )
        .add(
            "stack_index",
            crate::footprint::map_bytes(self.index.capacity(), std::mem::size_of::<(u64, u32)>()),
        )
        .add(
            "stack_scratch",
            self.chain.capacity() * std::mem::size_of::<u64>()
                + self.chain_sizes.capacity() * std::mem::size_of::<u32>(),
        );
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stack(k: f64, updater: UpdaterKind) -> KrrStack {
        KrrStack::new(k, updater, 0xDEAD_BEEF)
    }

    #[test]
    fn cold_misses_report_growing_stack() {
        let mut s = stack(4.0, UpdaterKind::Backward);
        for key in 0..100u64 {
            match s.access(key, 1) {
                Access::Cold { stack_len } => assert_eq!(stack_len, key + 1),
                Access::Hit { .. } => panic!("unexpected hit"),
            }
        }
        assert_eq!(s.len(), 100);
    }

    #[test]
    fn referenced_object_moves_to_top() {
        for updater in [
            UpdaterKind::Naive,
            UpdaterKind::TopDown,
            UpdaterKind::Backward,
        ] {
            let mut s = stack(4.0, updater);
            for key in 0..50u64 {
                s.access(key, 1);
                assert_eq!(s.position_of(key), Some(1), "{updater:?}");
            }
            s.access(17, 1);
            assert_eq!(s.position_of(17), Some(1));
        }
    }

    #[test]
    fn stack_remains_a_permutation() {
        for updater in [
            UpdaterKind::Naive,
            UpdaterKind::TopDown,
            UpdaterKind::Backward,
        ] {
            let mut s = stack(3.0, updater);
            let mut rng = Xoshiro256::seed_from_u64(1);
            for _ in 0..5000 {
                let key = rng.below(200);
                s.access(key, 1);
            }
            assert_eq!(s.len(), 200);
            let mut seen = std::collections::HashSet::new();
            for (i, e) in s.iter().enumerate() {
                assert!(seen.insert(e.key), "duplicate key {} ({updater:?})", e.key);
                assert_eq!(
                    s.position_of(e.key),
                    Some(i as u64 + 1),
                    "index out of sync"
                );
            }
        }
    }

    #[test]
    fn immediate_rereference_has_distance_one() {
        let mut s = stack(2.0, UpdaterKind::Backward);
        s.access(1, 1);
        assert_eq!(s.access(1, 1), Access::Hit { phi: 1 });
    }

    #[test]
    fn large_k_behaves_like_lru() {
        // With a huge effective K every interior position swaps, so the
        // stack order equals exact LRU recency order.
        let mut s = stack(1e6, UpdaterKind::Backward);
        for key in 0..20u64 {
            s.access(key, 1);
        }
        s.access(5, 1);
        // LRU order now: 5, 19, 18, ..., 6, 4, 3, 2, 1, 0
        let order: Vec<u64> = s.iter().map(|e| e.key).collect();
        let mut expect = vec![5];
        expect.extend((6..20).rev());
        expect.extend((0..5).rev());
        assert_eq!(order, expect);
    }

    #[test]
    fn hit_distance_matches_position() {
        let mut s = stack(4.0, UpdaterKind::TopDown);
        for key in 0..30u64 {
            s.access(key, 1);
        }
        let pos = s.position_of(3).unwrap();
        assert_eq!(s.access(3, 1), Access::Hit { phi: pos });
    }

    #[test]
    fn size_updates_on_rereference() {
        let mut s = stack(2.0, UpdaterKind::Backward);
        s.access(7, 100);
        s.access(7, 250);
        assert_eq!(s.entry_at(1).unwrap().size, 250);
    }

    #[test]
    fn save_load_resumes_bit_identically() {
        for updater in UpdaterKind::ALL {
            let mut a = stack(5.0, updater);
            let mut rng = Xoshiro256::seed_from_u64(2);
            for _ in 0..3000 {
                a.access(rng.below(300), 1);
            }
            let mut enc = Enc::new();
            a.save_state(&mut enc);
            let bytes = enc.into_bytes();
            let mut b = KrrStack::load_state(&mut Dec::new(&bytes)).unwrap();
            for _ in 0..3000 {
                let key = rng.below(300);
                assert_eq!(a.access(key, 1), b.access(key, 1), "{updater:?}");
            }
            let ea: Vec<_> = a.iter().collect();
            let eb: Vec<_> = b.iter().collect();
            assert_eq!(ea, eb, "{updater:?}");
        }
    }

    #[test]
    fn chain_sizes_parallel_chain() {
        let mut s = stack(8.0, UpdaterKind::Backward);
        for key in 0..200u64 {
            s.access(key, (key % 7 + 1) as u32);
        }
        s.access(0, 1); // deep hit -> non-trivial chain
        assert_eq!(s.last_chain().len(), s.last_chain_sizes().len());
        assert!(!s.last_chain().is_empty());
    }
}
