//! Multi-tenant fleet profiling: thousands of KRR instances in one
//! process, one curve per tenant.
//!
//! The paper's pitch is that KRR is cheap enough to run *everywhere*; a
//! production fleet runs it per tenant, not per process (the motivating
//! scenario of Byrne et al.'s MRC survey). BENCH_space.json puts one KRR
//! instance at R=0.01 around a few hundred kilobytes, so a
//! [`FleetArena`] can host 1000+ tenants in a single process and still fit
//! in tens of megabytes.
//!
//! Design:
//!
//! * **Route once.** An access is `(tenant, key, size)`. The key is hashed
//!   exactly once ([`hash_key`]) and the hash is handed to the tenant's
//!   model ([`KrrModel::access_hashed`]), whose spatial filter consumes its
//!   low bits — the same contract as [`crate::sharded`]. Tenant routing is
//!   an id → slot table lookup, never a second key hash.
//! * **Deterministic seeds.** A tenant's RNG seed is derived from the
//!   *tenant id* (splitmix-mixed into the template seed), not from its
//!   arrival order, so a fleet run is reproducible regardless of which
//!   tenant shows up first — and bit-identical at any thread count.
//! * **Pipeline reuse.** [`FleetArena::process_parallel`] routes
//!   pre-resolved `(slot, key, size, hash)` items through the same
//!   router/worker topology as [`crate::ShardedKrr`]
//!   (`pipeline::run_routed`): slot `s` is owned by worker `s % threads`
//!   and per-slot FIFO order makes results bit-identical to the sequential
//!   [`FleetArena::access`] loop.
//! * **Observability rollup.** [`FleetArena::publish_metrics`] pushes one
//!   [`TenantRow`] per tenant into the attached [`MetricsRegistry`]
//!   (rendered as `tenant.*` JSON, `# tenant` INFO lines, and
//!   `{tenant="..."}`-labeled OpenMetrics series) and rolls per-tenant
//!   [`Footprint`] accounting into the `memory.tenant.*` gauges.
//!   [`FleetArena::view`] publishes per-tenant MRCs to a [`FleetCell`] for
//!   the expo server's `/tenants` and `/mrc?tenant=ID` endpoints.
//!
//! ```
//! use krr_core::fleet::{FleetArena, FleetConfig};
//! use krr_core::KrrConfig;
//!
//! let mut fleet = FleetArena::new(FleetConfig::new(KrrConfig::new(5.0).seed(7)));
//! for round in 0..3u64 {
//!     for tenant in 0..16u64 {
//!         for key in 0..200u64 {
//!             fleet.access(tenant, key * (round + 1), 1);
//!         }
//!     }
//! }
//! assert_eq!(fleet.len(), 16);
//! let hot = fleet.hottest(4);
//! assert_eq!(hot.len(), 4);
//! assert!(fleet.tenant_mrc(0).is_some());
//! ```

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use crate::footprint::{map_bytes, Footprint, FootprintReport};
use crate::hashing::hash_key;
use crate::metrics::{MetricsRegistry, TenantRow};
use crate::model::{KrrConfig, KrrModel, ModelStats};
use crate::mrc::Mrc;
use crate::obs::FlightRecorder;
use crate::pipeline::{self, PipelineConfig};
use crate::rng::mix64;

/// Configuration for a [`FleetArena`].
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Template model configuration; every tenant gets a copy with a seed
    /// derived from its tenant id (see [`FleetConfig::tenant_seed`]).
    pub template: KrrConfig,
    /// Cache-size budget (in objects, or bytes under byte-level sizing) at
    /// which each tenant's summarized miss ratio is evaluated — the
    /// `miss_ratio_ppm` column of [`TenantRow`]. Defaults to 4096.
    pub budget: f64,
}

impl FleetConfig {
    /// Fleet configuration from a template model config.
    #[must_use]
    pub fn new(template: KrrConfig) -> Self {
        Self {
            template,
            budget: 4096.0,
        }
    }

    /// Sets the miss-ratio evaluation budget.
    #[must_use]
    pub fn budget(mut self, budget: f64) -> Self {
        self.budget = budget;
        self
    }

    /// The RNG seed for `tenant`: the template seed XOR a
    /// splitmix64-mixed function of the tenant id. Stable under arrival
    /// order — tenant 42 gets the same seed whether it is the first or the
    /// thousandth to register.
    #[must_use]
    pub fn tenant_seed(&self, tenant: u64) -> u64 {
        self.template.seed ^ mix64(tenant ^ 0xA076_1D64_78BD_642F)
    }
}

/// Per-tenant bookkeeping kept alongside the model (slot-indexed,
/// parallel to `FleetArena::models`).
#[derive(Debug, Clone)]
struct TenantMeta {
    id: u64,
    refs: u64,
    drift_events: u64,
    mae_ppm: u64,
    shadowed: bool,
}

/// A tenant arena: one lightweight [`KrrModel`] per tenant id, with
/// deterministic routing, per-tenant metrics rows, and fleet-level
/// footprint rollups. See the [module docs](self) for the design.
#[derive(Debug)]
pub struct FleetArena {
    models: Vec<KrrModel>,
    meta: Vec<TenantMeta>,
    index: HashMap<u64, usize>,
    config: FleetConfig,
    metrics: Option<Arc<MetricsRegistry>>,
    recorder: Option<Arc<FlightRecorder>>,
}

impl FleetArena {
    /// Creates an empty arena; tenants register on first access.
    #[must_use]
    pub fn new(config: FleetConfig) -> Self {
        Self {
            models: Vec::new(),
            meta: Vec::new(),
            index: HashMap::new(),
            config,
            metrics: None,
            recorder: None,
        }
    }

    /// The arena's configuration.
    #[must_use]
    pub fn config(&self) -> &FleetConfig {
        &self.config
    }

    /// Number of registered tenants.
    #[must_use]
    pub fn len(&self) -> usize {
        self.meta.len()
    }

    /// True when no tenant has registered yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.meta.is_empty()
    }

    /// Registered tenant ids in registration order.
    #[must_use]
    pub fn tenant_ids(&self) -> Vec<u64> {
        self.meta.iter().map(|t| t.id).collect()
    }

    /// True if `tenant` has registered.
    #[must_use]
    pub fn contains(&self, tenant: u64) -> bool {
        self.index.contains_key(&tenant)
    }

    /// Attaches a metrics registry: every tenant model (current and
    /// future) records into it, so the `model`/`updater`/`latency`
    /// sections aggregate the whole fleet, and
    /// [`FleetArena::publish_metrics`] fills the `tenant.*` rows.
    pub fn set_metrics(&mut self, metrics: Arc<MetricsRegistry>) {
        for m in &mut self.models {
            m.set_metrics(Arc::clone(&metrics));
        }
        self.metrics = Some(metrics);
    }

    /// Attaches a flight recorder for pipeline runs (`router` /
    /// `worker-<w>` rings). Tenant models do not get per-model rings — a
    /// thousand rings would observe nothing useful.
    pub fn set_recorder(&mut self, recorder: Arc<FlightRecorder>) {
        self.recorder = Some(recorder);
    }

    /// Returns `tenant`'s slot, registering a fresh model (seeded by
    /// [`FleetConfig::tenant_seed`]) on first sight.
    pub fn register(&mut self, tenant: u64) -> usize {
        if let Some(&s) = self.index.get(&tenant) {
            return s;
        }
        let mut cfg = self.config.template.clone();
        cfg.seed = self.config.tenant_seed(tenant);
        let mut model = KrrModel::new(cfg);
        if let Some(reg) = &self.metrics {
            model.set_metrics(Arc::clone(reg));
        }
        let slot = self.models.len();
        self.models.push(model);
        self.meta.push(TenantMeta {
            id: tenant,
            refs: 0,
            drift_events: 0,
            mae_ppm: 0,
            shadowed: false,
        });
        self.index.insert(tenant, slot);
        slot
    }

    /// Offers one reference (sequential path): the key is hashed once and
    /// routed to `tenant`'s model.
    pub fn access(&mut self, tenant: u64, key: u64, size: u32) {
        let h = hash_key(key);
        self.access_hashed(tenant, key, size, h);
    }

    /// [`FleetArena::access`] with the key hash precomputed. `key_hash`
    /// MUST equal `hash_key(key)` — the tenant model's spatial filter
    /// consumes its low bits, same contract as
    /// [`KrrModel::access_hashed`].
    pub fn access_hashed(&mut self, tenant: u64, key: u64, size: u32, key_hash: u64) {
        let slot = self.register(tenant);
        self.meta[slot].refs += 1;
        self.models[slot].access_hashed(key, size, key_hash);
    }

    /// Processes an in-memory multi-tenant trace of `(tenant, key, size)`
    /// triples with `threads` worker threads, reusing the route-once
    /// batched pipeline: tenants register up front (slot = first-appearance
    /// order; seeds depend only on tenant id), then pre-routed items stream
    /// through the router/worker topology. Bit-identical to the sequential
    /// [`FleetArena::access`] loop at any thread count.
    pub fn process_parallel(&mut self, refs: &[(u64, u64, u32)], threads: usize) {
        for &(tenant, _, _) in refs {
            let s = self.register(tenant);
            self.meta[s].refs += 1;
        }
        if self.models.is_empty() {
            return;
        }
        let cfg = Self::pipeline_config(threads, self.models.len());
        let models = std::mem::take(&mut self.models);
        let index = &self.index;
        self.models = pipeline::run_routed(
            models,
            // Hash 8 keys per call (same ILP lever as the sharded router);
            // hash_keys8 is bit-identical to scalar hash_key per lane.
            refs.chunks(8).flat_map(move |chunk| {
                let n = chunk.len();
                let hashes: [u64; 8] = if n == 8 {
                    crate::hashing::hash_keys8(std::array::from_fn(|i| chunk[i].1))
                } else {
                    std::array::from_fn(|i| hash_key(chunk[i % n].1))
                };
                chunk
                    .iter()
                    .enumerate()
                    .map(move |(i, &(tenant, key, size))| (index[&tenant], key, size, hashes[i]))
            }),
            threads,
            &cfg,
            self.metrics.as_ref(),
            self.recorder.as_ref(),
        );
        self.publish_metrics();
    }

    /// Pipeline tuning for fleet runs: thousands of mostly-cool slots want
    /// much smaller batches than a handful of always-hot shards, or a
    /// skewed tenant mix leaves most references stranded in half-empty
    /// buffers until the end-of-stream flush.
    fn pipeline_config(threads: usize, n_slots: usize) -> PipelineConfig {
        let base = PipelineConfig::for_threads(threads);
        PipelineConfig {
            batch_size: base.batch_size.min(512.max(65_536 / n_slots.max(1))),
            queue_depth: base.queue_depth.max(8),
        }
    }

    /// Aggregate model counters over the whole fleet.
    #[must_use]
    pub fn stats(&self) -> ModelStats {
        let mut total = ModelStats {
            processed: 0,
            sampled: 0,
            distinct: 0,
        };
        for m in &self.models {
            let st = m.stats();
            total.processed += st.processed;
            total.sampled += st.sampled;
            total.distinct += st.distinct;
        }
        total
    }

    /// References routed to `tenant` so far (`None` if unregistered).
    #[must_use]
    pub fn tenant_refs(&self, tenant: u64) -> Option<u64> {
        self.index.get(&tenant).map(|&s| self.meta[s].refs)
    }

    /// `tenant`'s model (`None` if unregistered).
    #[must_use]
    pub fn tenant_model(&self, tenant: u64) -> Option<&KrrModel> {
        self.index.get(&tenant).map(|&s| &self.models[s])
    }

    /// `tenant`'s miss ratio curve (`None` if unregistered).
    #[must_use]
    pub fn tenant_mrc(&self, tenant: u64) -> Option<Mrc> {
        self.tenant_model(tenant).map(KrrModel::mrc)
    }

    /// Marks whether the accuracy watchdog currently shadows `tenant`
    /// (no-op if unregistered). Driven by the top-K selection of
    /// `krr-baselines`' fleet watchdog.
    pub fn set_shadowed(&mut self, tenant: u64, shadowed: bool) {
        if let Some(&s) = self.index.get(&tenant) {
            self.meta[s].shadowed = shadowed;
        }
    }

    /// Records a watchdog check result against `tenant`: updates its MAE
    /// gauge and, when `drifted`, its drift-event count (no-op if
    /// unregistered).
    pub fn record_check(&mut self, tenant: u64, mae_ppm: u64, drifted: bool) {
        if let Some(&s) = self.index.get(&tenant) {
            self.meta[s].mae_ppm = mae_ppm;
            if drifted {
                self.meta[s].drift_events += 1;
            }
        }
    }

    /// Drift events recorded against `tenant` (`None` if unregistered).
    #[must_use]
    pub fn tenant_drift_events(&self, tenant: u64) -> Option<u64> {
        self.index.get(&tenant).map(|&s| self.meta[s].drift_events)
    }

    fn row(&self, slot: usize, mrc: &Mrc) -> TenantRow {
        let t = &self.meta[slot];
        let m = &self.models[slot];
        TenantRow {
            id: t.id,
            refs: t.refs,
            resident: m.stats().distinct,
            resident_bytes: m.deep_bytes() as u64,
            miss_ratio_ppm: (mrc.eval(self.config.budget) * 1e6).round() as u64,
            drift_events: t.drift_events,
            mae_ppm: t.mae_ppm,
            shadowed: t.shadowed,
        }
    }

    /// One [`TenantRow`] per tenant, in registration order.
    #[must_use]
    pub fn summary(&self) -> Vec<TenantRow> {
        (0..self.meta.len())
            .map(|s| {
                let mrc = self.models[s].mrc();
                self.row(s, &mrc)
            })
            .collect()
    }

    /// The top `k` tenants by traffic (reference count, ties broken by
    /// tenant id for determinism), hottest first.
    #[must_use]
    pub fn hottest(&self, k: usize) -> Vec<TenantRow> {
        let mut order: Vec<usize> = (0..self.meta.len()).collect();
        order.sort_by_key(|&s| (std::cmp::Reverse(self.meta[s].refs), self.meta[s].id));
        order.truncate(k);
        order
            .into_iter()
            .map(|s| {
                let mrc = self.models[s].mrc();
                self.row(s, &mrc)
            })
            .collect()
    }

    /// The top `k` tenants by drift (drift events, then MAE, ties broken
    /// by tenant id), most drifted first.
    #[must_use]
    pub fn most_drifted(&self, k: usize) -> Vec<TenantRow> {
        let mut order: Vec<usize> = (0..self.meta.len()).collect();
        order.sort_by_key(|&s| {
            (
                std::cmp::Reverse(self.meta[s].drift_events),
                std::cmp::Reverse(self.meta[s].mae_ppm),
                self.meta[s].id,
            )
        });
        order.truncate(k);
        order
            .into_iter()
            .map(|s| {
                let mrc = self.models[s].mrc();
                self.row(s, &mrc)
            })
            .collect()
    }

    /// Builds the full exposition view: every tenant's summary row plus
    /// its MRC, ready to publish into a [`FleetCell`].
    #[must_use]
    pub fn view(&self) -> FleetView {
        let mut rows = Vec::with_capacity(self.meta.len());
        let mut mrcs = Vec::with_capacity(self.meta.len());
        for s in 0..self.meta.len() {
            let mrc = self.models[s].mrc();
            rows.push(self.row(s, &mrc));
            mrcs.push((self.meta[s].id, mrc));
        }
        FleetView {
            budget: self.config.budget,
            rows,
            mrcs,
        }
    }

    /// Pushes the per-tenant rows and the fleet footprint rollup into the
    /// attached registry (no-op when detached). Called automatically after
    /// a pipeline run; sequential loops call it at their own cadence.
    pub fn publish_metrics(&self) {
        let Some(reg) = &self.metrics else { return };
        reg.set_tenant_rows(self.summary());
        reg.publish_footprint(&self.footprint());
    }
}

impl Footprint for FleetArena {
    /// Label-wise sum of every tenant model's footprint plus the tenant
    /// routing index (`tenant_index`).
    fn footprint(&self) -> FootprintReport {
        let mut r = FootprintReport::new();
        for m in &self.models {
            r.merge(&m.footprint());
        }
        r.add(
            "tenant_index",
            map_bytes(self.index.len(), std::mem::size_of::<(u64, usize)>()),
        );
        r
    }
}

/// The fleet view published for exposition: summary rows plus per-tenant
/// MRCs, a point-in-time copy the expo server can serve without touching
/// the (single-writer) arena.
#[derive(Debug, Clone)]
pub struct FleetView {
    /// The budget the rows' miss ratios were evaluated at.
    pub budget: f64,
    /// One summary row per tenant, registration order.
    pub rows: Vec<TenantRow>,
    /// `(tenant id, MRC)` per tenant, registration order.
    pub mrcs: Vec<(u64, Mrc)>,
}

impl FleetView {
    /// The MRC for `tenant`, if present.
    #[must_use]
    pub fn mrc_for(&self, tenant: u64) -> Option<&Mrc> {
        self.mrcs
            .iter()
            .find(|(id, _)| *id == tenant)
            .map(|(_, m)| m)
    }
}

/// Shared slot the profiling side publishes [`FleetView`]s into and the
/// expo server reads from — the fleet analogue of [`crate::expo::MrcCell`].
#[derive(Debug, Default)]
pub struct FleetCell {
    inner: Mutex<Option<FleetView>>,
}

impl FleetCell {
    /// Creates an empty cell (readers see `None` until first publish).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Replaces the published view.
    pub fn publish(&self, view: FleetView) {
        *self.inner.lock().expect("fleet cell poisoned") = Some(view);
    }

    /// A copy of the latest view, if any.
    #[must_use]
    pub fn get(&self) -> Option<FleetView> {
        self.inner.lock().expect("fleet cell poisoned").clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Xoshiro256;

    /// Skewed multi-tenant trace: tenant popularity and per-tenant key
    /// popularity both quadratically skewed.
    fn fleet_trace(tenants: u64, keys: u64, n: usize, seed: u64) -> Vec<(u64, u64, u32)> {
        let mut rng = Xoshiro256::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let t = rng.unit();
                let u = rng.unit();
                (
                    (t * t * tenants as f64) as u64,
                    (u * u * keys as f64) as u64,
                    1 + (u * 64.0) as u32,
                )
            })
            .collect()
    }

    #[test]
    fn seeds_are_arrival_order_independent() {
        let cfg = FleetConfig::new(KrrConfig::new(5.0).seed(42));
        let mut a = FleetArena::new(cfg.clone());
        let mut b = FleetArena::new(cfg);
        // Same accesses, different first-sight order.
        let refs = [(7u64, 1u64), (3, 1), (7, 2), (3, 2), (9, 1)];
        for &(t, k) in &refs {
            a.access(t, k, 1);
        }
        for &(t, k) in refs.iter().rev() {
            b.access(t, k, 1);
        }
        for t in [3u64, 7, 9] {
            assert_eq!(
                a.tenant_mrc(t).unwrap().points(),
                b.tenant_mrc(t).unwrap().points(),
                "tenant {t}"
            );
        }
    }

    #[test]
    fn parallel_matches_sequential_per_tenant() {
        let refs = fleet_trace(40, 2_000, 60_000, 5);
        let cfg = FleetConfig::new(KrrConfig::new(4.0).seed(9));
        let mut seq = FleetArena::new(cfg.clone());
        for &(t, k, s) in &refs {
            seq.access(t, k, s);
        }
        for threads in [1usize, 2, 4, 8, 16] {
            let mut par = FleetArena::new(cfg.clone());
            par.process_parallel(&refs, threads);
            assert_eq!(par.len(), seq.len());
            for id in seq.tenant_ids() {
                assert_eq!(
                    par.tenant_mrc(id).unwrap().points(),
                    seq.tenant_mrc(id).unwrap().points(),
                    "tenant {id} at {threads} threads"
                );
                assert_eq!(par.tenant_refs(id), seq.tenant_refs(id));
            }
            assert_eq!(par.stats(), seq.stats());
        }
    }

    #[test]
    fn hottest_and_drifted_views_are_ordered() {
        let mut fleet = FleetArena::new(FleetConfig::new(KrrConfig::new(5.0).seed(1)));
        for t in 0..10u64 {
            for k in 0..=(t * 10) {
                fleet.access(t, k, 1);
            }
        }
        let hot = fleet.hottest(3);
        assert_eq!(hot.len(), 3);
        assert_eq!(hot[0].id, 9);
        assert_eq!(hot[1].id, 8);
        assert_eq!(hot[2].id, 7);
        fleet.record_check(4, 20_000, true);
        fleet.record_check(2, 9_000, false);
        let drifted = fleet.most_drifted(2);
        assert_eq!(drifted[0].id, 4);
        assert_eq!(drifted[0].drift_events, 1);
        assert_eq!(drifted[1].id, 2, "MAE breaks the zero-drift tie");
    }

    #[test]
    fn rows_flow_into_registry_and_renderings() {
        let reg = Arc::new(MetricsRegistry::new());
        let mut fleet = FleetArena::new(FleetConfig::new(KrrConfig::new(5.0).seed(3)));
        fleet.set_metrics(Arc::clone(&reg));
        let refs = fleet_trace(12, 500, 8_000, 7);
        fleet.process_parallel(&refs, 2);
        let snap = reg.snapshot();
        assert_eq!(snap.tenant_rows.len(), fleet.len());
        assert_eq!(snap.tenant_refs(), refs.len() as u64);
        let (total, mean, max) = snap.tenant_memory();
        assert!(total > 0 && mean > 0 && max >= mean);
        let json = snap.to_json();
        assert!(json.contains("\"tenant\":{\"count\":"), "{json}");
        assert!(json.contains("\"rows\":[{\"id\":"), "{json}");
        assert!(json.contains("\"memory\":{"), "{json}");
        let info = snap.render_info();
        assert!(info.contains("# tenant"), "{info}");
        assert!(info.contains("tenant_total_bytes:"), "{info}");
    }

    #[test]
    fn footprint_covers_models_and_index() {
        let mut fleet = FleetArena::new(FleetConfig::new(KrrConfig::new(5.0).seed(2)));
        for t in 0..8u64 {
            for k in 0..300u64 {
                fleet.access(t, k, 1);
            }
        }
        let r = fleet.footprint();
        assert!(r.get("stack_entries") > 0);
        assert!(r.get("tenant_index") > 0);
        let per_model: usize = (0..8u64)
            .map(|t| fleet.tenant_model(t).unwrap().deep_bytes())
            .sum();
        assert_eq!(r.total(), per_model + r.get("tenant_index"));
    }

    #[test]
    fn fleet_cell_round_trips_views() {
        let mut fleet = FleetArena::new(FleetConfig::new(KrrConfig::new(5.0).seed(4)));
        for t in 0..5u64 {
            for k in 0..100u64 {
                fleet.access(t, k + t, 1);
            }
        }
        let cell = FleetCell::new();
        assert!(cell.get().is_none());
        cell.publish(fleet.view());
        let view = cell.get().unwrap();
        assert_eq!(view.rows.len(), 5);
        assert!(view.mrc_for(3).is_some());
        assert!(view.mrc_for(99).is_none());
        assert_eq!(
            view.mrc_for(3).unwrap().points(),
            fleet.tenant_mrc(3).unwrap().points()
        );
    }

    #[test]
    fn empty_fleet_is_harmless() {
        let mut fleet = FleetArena::new(FleetConfig::new(KrrConfig::new(5.0)));
        fleet.process_parallel(&[], 4);
        assert!(fleet.is_empty());
        assert_eq!(fleet.summary().len(), 0);
        assert!(fleet.hottest(5).is_empty());
        assert!(fleet.tenant_mrc(0).is_none());
    }
}
