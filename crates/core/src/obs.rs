//! Flight-recorder observability: lock-free span tracing and a windowed
//! stats timeline.
//!
//! PR 1's [`crate::metrics`] registry answers "how many / how long in
//! aggregate"; this module makes the pipeline's behaviour visible *in
//! time*. Three pieces:
//!
//! * **[`FlightRecorder`]** — per-thread lock-free ring buffers of
//!   fixed-size span events (phase id, start ns, duration ns, one argument
//!   word). Producers write into their own ring with plain `Relaxed`
//!   atomic stores (single-writer, no RMW on the hot path beyond a cursor
//!   bump); the recorder drains all rings on demand into Chrome
//!   trace-event JSON, loadable in Perfetto or `chrome://tracing`.
//! * **[`ThreadRecorder`]** — one thread's handle into the recorder. A
//!   detached recorder is an `Option` in the instrumented struct, so the
//!   disabled hot path compiles to one branch-on-`None` with zero
//!   allocation and zero clock reads.
//! * **[`StatsTimeline`]** — a windowed emitter that turns the one-shot
//!   `krr-metrics-v1` snapshot into a time series: every N references it
//!   takes a delta snapshot of a [`MetricsRegistry`] and appends one
//!   JSON-Lines row (`krr-stats-v1`) with throughput, busy time, queue
//!   high-water marks and histogram deltas.
//!
//! Tracing never touches model state, RNG, or reference order, so MRCs
//! are bit-identical with tracing on or off at any thread count (covered
//! by the `obs` integration suite).
//!
//! ```
//! use krr_core::obs::{FlightRecorder, Phase};
//!
//! let rec = FlightRecorder::new();
//! let t = rec.register("worker-0");
//! let t0 = t.now_ns();
//! // ... do work ...
//! t.record(Phase::WorkerBatch, t0, t.now_ns() - t0, 4096);
//! let mut out = Vec::new();
//! rec.write_chrome_trace(&mut out).unwrap();
//! assert!(String::from_utf8(out).unwrap().contains("\"traceEvents\""));
//! ```

use std::io::{self, Write};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::metrics::{HistogramSnapshot, MetricsRegistry, MetricsSnapshot};
use crate::profiler::{PhaseProfiler, ProfPhase, ProfilerHandle};

/// Default ring capacity in events per registered thread.
pub const DEFAULT_RING_CAPACITY: usize = 8192;

/// Swap-chain length at or above which an un-sampled stack update is still
/// recorded as a zero-duration "deep update" marker. Chains this long are
/// the `O(K·logM)` tail the paper's update strategies exist to bound, so
/// every one of them is worth a dot on the timeline.
pub const DEEP_CHAIN_THRESHOLD: u64 = 32;

/// What a span measured. Each phase becomes a named slice on the Chrome
/// trace timeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum Phase {
    /// Pipeline router handing one batch to a worker (arg = shard index).
    RouterBatch = 0,
    /// Router blocked on a full worker queue (arg = shard index).
    RouterStall = 1,
    /// Worker draining one batch into a shard model (arg = batch length).
    WorkerBatch = 2,
    /// Merging shard histograms into one MRC (arg = shard count).
    Merge = 3,
    /// One sampled KRR stack update (arg = swap-chain length).
    StackUpdate = 4,
    /// Zero-duration marker for a deep swap chain (arg = chain length).
    DeepUpdate = 5,
    /// CSV reader stalled on input (arg = bytes read by the slow call).
    CsvRead = 6,
    /// Mini-Redis command handling (arg = command tag).
    Command = 7,
    /// Stats-timeline row emission (arg = row index).
    StatsTick = 8,
    /// Accuracy-watchdog shadow comparison (arg = MAE in ppm).
    WatchdogCheck = 9,
    /// Worker blocked waiting on an empty ring (arg = worker index).
    RingWait = 10,
}

impl Phase {
    /// Stable name shown in trace viewers.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Phase::RouterBatch => "router_batch",
            Phase::RouterStall => "router_stall",
            Phase::WorkerBatch => "worker_batch",
            Phase::Merge => "merge",
            Phase::StackUpdate => "stack_update",
            Phase::DeepUpdate => "deep_update",
            Phase::CsvRead => "csv_read",
            Phase::Command => "command",
            Phase::StatsTick => "stats_tick",
            Phase::WatchdogCheck => "watchdog_check",
            Phase::RingWait => "ring_wait",
        }
    }

    fn from_id(id: u64) -> Option<Phase> {
        Some(match id {
            0 => Phase::RouterBatch,
            1 => Phase::RouterStall,
            2 => Phase::WorkerBatch,
            3 => Phase::Merge,
            4 => Phase::StackUpdate,
            5 => Phase::DeepUpdate,
            6 => Phase::CsvRead,
            7 => Phase::Command,
            8 => Phase::StatsTick,
            9 => Phase::WatchdogCheck,
            10 => Phase::RingWait,
            _ => return None,
        })
    }
}

/// One drained span: `[start_ns, start_ns + dur_ns)` on logical thread
/// `tid`, with one argument word whose meaning depends on the phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanEvent {
    /// What was measured.
    pub phase: Phase,
    /// Logical thread id (registration order).
    pub tid: u32,
    /// Start, in nanoseconds since the recorder's epoch.
    pub start_ns: u64,
    /// Duration in nanoseconds (0 for marker events).
    pub dur_ns: u64,
    /// Phase-specific argument word.
    pub arg: u64,
}

const WORDS_PER_EVENT: usize = 4;

/// One thread's ring. Only the owning [`ThreadRecorder`] writes; drains
/// read concurrently with `Relaxed` loads. A drain racing an in-flight
/// write can observe one torn event; the drain validates the phase id and
/// drops garbage, which is the usual flight-recorder trade for a
/// zero-coordination hot path.
#[derive(Debug)]
struct Ring {
    tid: u32,
    label: String,
    /// Events ever written (monotone; slot = cursor % capacity).
    cursor: AtomicU64,
    words: Box<[AtomicU64]>,
}

impl Ring {
    fn capacity(&self) -> usize {
        self.words.len() / WORDS_PER_EVENT
    }
}

/// The shared flight recorder: a registry of per-thread rings plus the
/// common clock epoch.
#[derive(Debug)]
pub struct FlightRecorder {
    epoch: Instant,
    capacity: usize,
    rings: Mutex<Vec<Arc<Ring>>>,
    /// Embedded self-profiler: every recorded span is also attributed to
    /// a [`ProfPhase`] bucket on the recording thread, so instrumented
    /// code gets phase attribution for free (see [`crate::profiler`]).
    profiler: Arc<PhaseProfiler>,
}

impl Default for FlightRecorder {
    fn default() -> Self {
        Self::with_capacity(DEFAULT_RING_CAPACITY)
    }
}

impl FlightRecorder {
    /// Recorder with the default per-thread ring capacity.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Recorder whose per-thread rings hold `capacity` events (rounded up
    /// to a power of two, minimum 16). Older events are overwritten once a
    /// ring is full — a flight recorder keeps the recent past, not
    /// everything.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            epoch: Instant::now(),
            capacity: capacity.max(16).next_power_of_two(),
            rings: Mutex::new(Vec::new()),
            profiler: Arc::new(PhaseProfiler::new()),
        }
    }

    /// The embedded phase-attribution profiler (source of `/profile`).
    #[must_use]
    pub fn profiler(&self) -> &Arc<PhaseProfiler> {
        &self.profiler
    }

    /// Registers a new logical thread and returns its recording handle.
    /// Registration takes a lock (it is rare); recording never does.
    #[must_use]
    pub fn register(&self, label: &str) -> ThreadRecorder {
        let mut rings = self.rings.lock().expect("recorder poisoned");
        let ring = Arc::new(Ring {
            tid: rings.len() as u32,
            label: label.to_string(),
            cursor: AtomicU64::new(0),
            words: (0..self.capacity * WORDS_PER_EVENT)
                .map(|_| AtomicU64::new(0))
                .collect(),
        });
        rings.push(Arc::clone(&ring));
        drop(rings);
        ThreadRecorder {
            ring,
            epoch: self.epoch,
            prof: self.profiler.register(label),
        }
    }

    /// Nanoseconds since the recorder's epoch.
    #[must_use]
    pub fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    /// Drains every ring: returns all currently-held events sorted by
    /// start time, plus the number of events lost to ring overwrite.
    #[must_use]
    pub fn collect_events(&self) -> (Vec<SpanEvent>, u64) {
        let rings = self.rings.lock().expect("recorder poisoned");
        let mut events = Vec::new();
        let mut dropped = 0u64;
        for ring in rings.iter() {
            let cap = ring.capacity() as u64;
            let end = ring.cursor.load(Ordering::Acquire);
            let start = end.saturating_sub(cap);
            dropped += start;
            for i in start..end {
                let base = (i % cap) as usize * WORDS_PER_EVENT;
                let w0 = ring.words[base].load(Ordering::Relaxed);
                // A torn or not-yet-written slot shows an invalid phase id
                // (word 0 also carries a validity tag in the high bits).
                let Some(phase) = Phase::from_id(w0 & 0xFF) else {
                    continue;
                };
                if w0 >> 8 != VALID_TAG {
                    continue;
                }
                events.push(SpanEvent {
                    phase,
                    tid: ring.tid,
                    start_ns: ring.words[base + 1].load(Ordering::Relaxed),
                    dur_ns: ring.words[base + 2].load(Ordering::Relaxed),
                    arg: ring.words[base + 3].load(Ordering::Relaxed),
                });
            }
        }
        events.sort_by_key(|e| (e.start_ns, e.tid));
        (events, dropped)
    }

    /// Writes the drained events as Chrome trace-event JSON (the
    /// `{"traceEvents": [...]}` object format): one `ph:"M"` thread-name
    /// metadata record per registered thread, then one `ph:"X"` complete
    /// event per span with microsecond `ts`/`dur`. Open the file in
    /// Perfetto (<https://ui.perfetto.dev>) or `chrome://tracing`.
    pub fn write_chrome_trace<W: Write>(&self, mut w: W) -> io::Result<()> {
        let (events, dropped) = self.collect_events();
        let rings = self.rings.lock().expect("recorder poisoned");
        w.write_all(b"{\"traceEvents\":[")?;
        let mut first = true;
        let sep = |w: &mut W, first: &mut bool| -> io::Result<()> {
            if !*first {
                w.write_all(b",")?;
            }
            *first = false;
            Ok(())
        };
        for ring in rings.iter() {
            sep(&mut w, &mut first)?;
            write!(
                w,
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{},\
                 \"args\":{{\"name\":{}}}}}",
                ring.tid,
                json_string(&ring.label)
            )?;
        }
        drop(rings);
        for e in &events {
            sep(&mut w, &mut first)?;
            // Command spans pack `tag | (tenant_id + 1) << 8` so fleet-mode
            // slow commands stay attributable; decode the tenant back out.
            let args = if e.phase == Phase::Command && e.arg >> 8 != 0 {
                format!(
                    "{{\"arg\":{},\"tenant\":{}}}",
                    e.arg & 0xFF,
                    (e.arg >> 8) - 1
                )
            } else {
                format!("{{\"arg\":{}}}", e.arg)
            };
            // ts/dur are microseconds with ns precision kept as decimals.
            write!(
                w,
                "{{\"name\":\"{}\",\"cat\":\"krr\",\"ph\":\"X\",\"ts\":{}.{:03},\
                 \"dur\":{}.{:03},\"pid\":1,\"tid\":{},\"args\":{}}}",
                e.phase.name(),
                e.start_ns / 1_000,
                e.start_ns % 1_000,
                e.dur_ns / 1_000,
                e.dur_ns % 1_000,
                e.tid,
                args
            )?;
        }
        write!(
            w,
            "],\"displayTimeUnit\":\"ms\",\"otherData\":{{\"schema\":\"krr-trace-v1\",\
             \"dropped_events\":{dropped}}}}}"
        )
    }

    /// [`FlightRecorder::write_chrome_trace`] into a `String`.
    #[must_use]
    pub fn chrome_trace_json(&self) -> String {
        let mut buf = Vec::new();
        self.write_chrome_trace(&mut buf)
            .expect("in-memory write cannot fail");
        String::from_utf8(buf).expect("trace JSON is UTF-8")
    }
}

/// Validity tag stored in word 0's high bits so a drain can reject slots
/// that were never written (all-zero word 0 would otherwise decode as a
/// `RouterBatch` at t=0).
const VALID_TAG: u64 = 0x000B_5E55;

/// One thread's handle into a [`FlightRecorder`]. Recording is two
/// `Relaxed` stores per word plus a cursor bump — no locks, no allocation.
/// The handle is `Send` but deliberately not `Clone`: one ring has one
/// writer.
#[derive(Debug)]
pub struct ThreadRecorder {
    ring: Arc<Ring>,
    epoch: Instant,
    prof: ProfilerHandle,
}

impl ThreadRecorder {
    /// Nanoseconds since the owning recorder's epoch.
    #[inline]
    #[must_use]
    pub fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    /// Records one span event. `start_ns` must come from
    /// [`ThreadRecorder::now_ns`] (same epoch).
    #[inline]
    pub fn record(&self, phase: Phase, start_ns: u64, dur_ns: u64, arg: u64) {
        let cap = self.ring.capacity() as u64;
        let i = self.ring.cursor.load(Ordering::Relaxed);
        let base = (i % cap) as usize * WORDS_PER_EVENT;
        let words = &self.ring.words;
        words[base + 1].store(start_ns, Ordering::Relaxed);
        words[base + 2].store(dur_ns, Ordering::Relaxed);
        words[base + 3].store(arg, Ordering::Relaxed);
        words[base].store((VALID_TAG << 8) | phase as u64, Ordering::Relaxed);
        // Release-publish the slot before advancing the cursor so a drain
        // that sees the new cursor sees the completed words.
        self.ring.cursor.store(i + 1, Ordering::Release);
        // Piggyback phase attribution for the self-profiler: every span
        // is also a profile sample on this thread.
        self.prof.sample(ProfPhase::from_span(phase), dur_ns);
    }

    /// Records a span that started at `start_ns` and ends now.
    #[inline]
    pub fn record_since(&self, phase: Phase, start_ns: u64, arg: u64) {
        self.record(phase, start_ns, self.now_ns() - start_ns, arg);
    }

    /// Records a zero-duration marker event at the current time.
    #[inline]
    pub fn mark(&self, phase: Phase, arg: u64) {
        self.record(phase, self.now_ns(), 0, arg);
    }

    /// Logical thread id of this handle's ring.
    #[must_use]
    pub fn tid(&self) -> u32 {
        self.ring.tid
    }

    /// Attributes `ns` to a profiler bucket without recording a span —
    /// for stretches no span covers (the router's hashing time between
    /// dispatches samples [`ProfPhase::Hash`] this way).
    #[inline]
    pub fn profile(&self, phase: ProfPhase, ns: u64) {
        self.prof.sample(phase, ns);
    }
}

pub(crate) fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Windowed stats emitter: every `every` references it snapshots a
/// [`MetricsRegistry`], subtracts the previous snapshot, and appends one
/// `krr-stats-v1` JSON-Lines row to `out`. The one-shot `krr-metrics-v1`
/// snapshot becomes a time series — throughput, stall and busy-time deltas,
/// histogram deltas, and queue-depth high-water marks per window.
#[derive(Debug)]
pub struct StatsTimeline<W: Write> {
    reg: Arc<MetricsRegistry>,
    out: W,
    every: u64,
    next_at: u64,
    rows: u64,
    epoch: Instant,
    prev: MetricsSnapshot,
    prev_wall_ns: u64,
    prev_refs: u64,
}

impl<W: Write> StatsTimeline<W> {
    /// Timeline over `reg` writing to `out`, emitting every `every >= 1`
    /// references.
    #[must_use]
    pub fn new(reg: Arc<MetricsRegistry>, out: W, every: u64) -> Self {
        let every = every.max(1);
        let prev = reg.snapshot();
        Self {
            reg,
            out,
            every,
            next_at: every,
            rows: 0,
            epoch: Instant::now(),
            prev,
            prev_wall_ns: 0,
            prev_refs: 0,
        }
    }

    /// Number of rows written so far.
    #[must_use]
    pub fn rows(&self) -> u64 {
        self.rows
    }

    /// Continues a timeline across a checkpoint/restore: the interrupted
    /// run already processed `refs` references and wrote `rows` rows, so
    /// row numbering resumes at `rows`, deltas are taken against the
    /// registry's *current* (restored) state, and the next window boundary
    /// lands where the uninterrupted schedule would have put it. Call
    /// after [`crate::MetricsRegistry::absorb`]-ing the checkpointed
    /// snapshot and before the first [`StatsTimeline::offer`].
    pub fn resume_at(&mut self, refs: u64, rows: u64) {
        self.rows = rows;
        self.prev_refs = refs;
        self.next_at = (refs / self.every + 1) * self.every;
        self.prev = self.reg.snapshot();
    }

    /// Flushes and returns the underlying writer (e.g. to inspect rows
    /// written to an in-memory buffer).
    pub fn into_inner(mut self) -> io::Result<W> {
        self.out.flush()?;
        Ok(self.out)
    }

    /// Emits a row iff `refs` (references processed so far) has crossed
    /// the next window boundary. Returns whether a row was written.
    pub fn offer(&mut self, refs: u64) -> io::Result<bool> {
        if refs < self.next_at {
            return Ok(false);
        }
        self.emit(refs)?;
        self.next_at = (refs / self.every + 1) * self.every;
        Ok(true)
    }

    /// Emits one final row if any references arrived since the last row.
    pub fn finish(&mut self, refs: u64) -> io::Result<()> {
        if refs > self.prev_refs {
            self.emit(refs)?;
        }
        self.out.flush()
    }

    /// Unconditionally writes one delta row for the window ending at
    /// `refs` references.
    pub fn emit(&mut self, refs: u64) -> io::Result<()> {
        use std::fmt::Write as _;
        let snap = self.reg.snapshot();
        let wall_ns = self.epoch.elapsed().as_nanos() as u64;
        let d_refs = refs.saturating_sub(self.prev_refs);
        let d_wall = wall_ns.saturating_sub(self.prev_wall_ns);
        let throughput = if d_wall == 0 {
            0.0
        } else {
            d_refs as f64 * 1e9 / d_wall as f64
        };
        let d = |cur: u64, prev: u64| cur.saturating_sub(prev);
        let hist_delta = |s: &mut String, name: &str, cur: &HistogramSnapshot, prev| {
            let h = cur.delta(prev);
            let _ = write!(
                s,
                "\"{name}\":{{\"count\":{},\"sum\":{},\"mean\":{:.3},\"p99\":{},\"max\":{}}}",
                h.count,
                h.sum,
                h.mean(),
                h.percentile(0.99),
                h.max
            );
        };
        let mut row = String::with_capacity(512);
        let _ = write!(
            row,
            "{{\"schema\":\"krr-stats-v1\",\"row\":{},\"refs\":{refs},\"wall_ms\":{:.3},\
             \"throughput_rps\":{throughput:.1},\"delta\":{{\"refs\":{d_refs},",
            self.rows,
            wall_ns as f64 / 1e6,
        );
        let _ = write!(
            row,
            "\"accesses\":{},\"hits\":{},\"cold_misses\":{},\"spatial_rejected\":{},\
             \"batches\":{},\"stalls\":{},\"keys_hashed\":{},\"router_busy_ns\":{},\
             \"worker_busy_ns\":{},\"merges\":{},\"evictions\":{},",
            d(snap.accesses, self.prev.accesses),
            d(snap.hits, self.prev.hits),
            d(snap.cold_misses, self.prev.cold_misses),
            d(snap.spatial_rejected, self.prev.spatial_rejected),
            d(snap.pipeline_batches, self.prev.pipeline_batches),
            d(snap.pipeline_stalls, self.prev.pipeline_stalls),
            d(snap.pipeline_keys_hashed, self.prev.pipeline_keys_hashed),
            d(
                snap.pipeline_router_busy_ns,
                self.prev.pipeline_router_busy_ns
            ),
            d(
                snap.pipeline_worker_busy_ns,
                self.prev.pipeline_worker_busy_ns
            ),
            d(snap.merges, self.prev.merges),
            d(snap.evictions, self.prev.evictions),
        );
        hist_delta(&mut row, "chain_len", &snap.chain_len, &self.prev.chain_len);
        row.push(',');
        hist_delta(&mut row, "access_ns", &snap.access_ns, &self.prev.access_ns);
        row.push_str("},\"queue_depth_hwm\":[");
        for (i, q) in snap.pipeline_queue_hwm.iter().enumerate() {
            if i > 0 {
                row.push(',');
            }
            let _ = write!(row, "{q}");
        }
        let _ = write!(
            row,
            "],\"watchdog\":{{\"mae_ppm\":{},\"drift_events\":{}}}}}",
            snap.watchdog_mae_ppm, snap.watchdog_drift_events
        );
        self.out.write_all(row.as_bytes())?;
        self.out.write_all(b"\n")?;
        self.rows += 1;
        self.prev = snap;
        self.prev_wall_ns = wall_ns;
        self.prev_refs = refs;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_drain_roundtrip() {
        let rec = FlightRecorder::with_capacity(64);
        let t = rec.register("main");
        t.record(Phase::WorkerBatch, 100, 50, 7);
        t.record(Phase::Merge, 200, 10, 3);
        t.mark(Phase::DeepUpdate, 99);
        let (events, dropped) = rec.collect_events();
        assert_eq!(dropped, 0);
        assert_eq!(events.len(), 3);
        assert_eq!(events[0].phase, Phase::WorkerBatch);
        assert_eq!(events[0].start_ns, 100);
        assert_eq!(events[0].dur_ns, 50);
        assert_eq!(events[0].arg, 7);
        assert_eq!(events[1].phase, Phase::Merge);
        assert_eq!(events[2].phase, Phase::DeepUpdate);
        assert_eq!(events[2].dur_ns, 0);
    }

    #[test]
    fn ring_overwrites_oldest_and_counts_drops() {
        let rec = FlightRecorder::with_capacity(16);
        let t = rec.register("main");
        for i in 0..40u64 {
            t.record(Phase::StackUpdate, i, 1, i);
        }
        let (events, dropped) = rec.collect_events();
        assert_eq!(events.len(), 16);
        assert_eq!(dropped, 24);
        // The survivors are the most recent 16.
        assert_eq!(events.first().unwrap().arg, 24);
        assert_eq!(events.last().unwrap().arg, 39);
    }

    #[test]
    fn chrome_trace_has_metadata_and_complete_events() {
        let rec = FlightRecorder::with_capacity(16);
        let a = rec.register("router");
        let b = rec.register("worker-0");
        a.record(Phase::RouterBatch, 1_500, 2_750, 4);
        b.record(Phase::WorkerBatch, 3_000, 1_000, 4096);
        let json = rec.chrome_trace_json();
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"ph\":\"M\""), "{json}");
        assert!(json.contains("\"name\":\"router\""), "{json}");
        assert!(json.contains("\"ph\":\"X\""), "{json}");
        // 1500 ns -> 1.500 us.
        assert!(json.contains("\"ts\":1.500"), "{json}");
        assert!(json.contains("\"dur\":2.750"), "{json}");
        assert!(json.contains("\"dropped_events\":0"), "{json}");
        let open = json.matches(['{', '[']).count();
        let close = json.matches(['}', ']']).count();
        assert_eq!(open, close);
    }

    #[test]
    fn concurrent_writers_never_corrupt_each_other() {
        let rec = Arc::new(FlightRecorder::with_capacity(4096));
        std::thread::scope(|scope| {
            for w in 0..4u64 {
                let rec = Arc::clone(&rec);
                scope.spawn(move || {
                    let t = rec.register(&format!("w{w}"));
                    for i in 0..1000u64 {
                        t.record(Phase::WorkerBatch, i, 1, w);
                    }
                });
            }
        });
        let (events, dropped) = rec.collect_events();
        assert_eq!(dropped, 0);
        assert_eq!(events.len(), 4000);
        for w in 0..4u64 {
            assert_eq!(events.iter().filter(|e| e.arg == w).count(), 1000);
        }
    }

    #[test]
    fn timeline_emits_windowed_delta_rows() {
        let reg = Arc::new(MetricsRegistry::new());
        reg.init_shards(2);
        let mut out = Vec::new();
        {
            let mut tl = StatsTimeline::new(Arc::clone(&reg), &mut out, 100);
            assert!(!tl.offer(50).unwrap());
            reg.accesses.add(100);
            reg.chain_len.record(5);
            assert!(tl.offer(100).unwrap());
            reg.accesses.add(40);
            assert!(!tl.offer(140).unwrap());
            tl.finish(140).unwrap();
            assert_eq!(tl.rows(), 2);
        }
        let text = String::from_utf8(out).unwrap();
        let rows: Vec<&str> = text.lines().collect();
        assert_eq!(rows.len(), 2);
        assert!(rows[0].contains("\"schema\":\"krr-stats-v1\""));
        assert!(rows[0].contains("\"refs\":100"));
        assert!(rows[0].contains("\"accesses\":100"));
        // Second row is a delta, not a running total.
        assert!(rows[1].contains("\"refs\":140"), "{}", rows[1]);
        assert!(rows[1].contains("\"accesses\":40"), "{}", rows[1]);
        for r in rows {
            let open = r.matches(['{', '[']).count();
            let close = r.matches(['}', ']']).count();
            assert_eq!(open, close, "unbalanced row {r}");
        }
    }

    #[test]
    fn timeline_window_boundaries_do_not_double_fire() {
        let reg = Arc::new(MetricsRegistry::new());
        let mut tl = StatsTimeline::new(reg, Vec::new(), 10);
        assert!(tl.offer(10).unwrap());
        assert!(!tl.offer(10).unwrap());
        assert!(!tl.offer(19).unwrap());
        assert!(tl.offer(25).unwrap());
        assert!(tl.offer(30).unwrap());
        assert_eq!(tl.rows(), 3);
    }
}
