//! Eviction-probability mathematics for K-LRU and KRR.
//!
//! Implements Propositions 1 and 2 of the paper (eviction probability of the
//! rank-`d` object under random sampling with and without replacement), the
//! KRR stay/swap probabilities of Eq. 4.1, the interval no-swap probability
//! used by the top-down updater, the eviction-position CDF of Eq. 4.2 and its
//! inverse used by the backward updater, and the expected swap count of
//! Corollary 1.
//!
//! All functions take `k: f64` so the K′ = K^1.4 recency correction (§4.2)
//! composes without rounding.

/// Eviction probability of the object ranked `d` (1 = highest priority) in a
/// cache of size `c` under K-LRU sampling *with* replacement (Proposition 1):
/// `(d^K − (d−1)^K) / c^K`.
#[must_use]
pub fn eviction_prob_with_replacement(d: u64, c: u64, k: f64) -> f64 {
    assert!(d >= 1 && d <= c, "rank {d} out of range for cache size {c}");
    let c = c as f64;
    let d = d as f64;
    ((d / c).powf(k)) - (((d - 1.0) / c).powf(k))
}

/// Eviction probability of the object ranked `d` under K-LRU sampling
/// *without* replacement (Proposition 2). `k` must be an integer here (a
/// sample without replacement has an integral size); ranks `d < k` can never
/// be evicted.
#[must_use]
pub fn eviction_prob_without_replacement(d: u64, c: u64, k: u64) -> f64 {
    assert!(d >= 1 && d <= c, "rank {d} out of range for cache size {c}");
    assert!(
        k >= 1 && k <= c,
        "sample size {k} out of range for cache size {c}"
    );
    if d < k {
        return 0.0;
    }
    // Q = K * Π_{j=1}^{K-1} (d-j) / Π_{j=0}^{K-1} (C-j), computed as an
    // interleaved product to stay in f64 range for large C.
    let mut q = k as f64 / (c as f64);
    for j in 1..k {
        q *= (d - j) as f64 / (c - j) as f64;
    }
    q
}

/// Probability that the resident of stack position `i` *stays* in place
/// during a KRR stack update (Eq. 4.1): `((i-1)/i)^K`.
#[inline]
#[must_use]
pub fn stay_prob(i: u64, k: f64) -> f64 {
    debug_assert!(i >= 1);
    (((i - 1) as f64) / (i as f64)).powf(k)
}

/// Probability that *no* stack position in the inclusive interval `[a, b]`
/// swaps during one update: `Π_{i=a}^{b} ((i-1)/i)^K = ((a-1)/b)^K`.
///
/// Returns 1.0 for an empty interval (`a > b`).
#[inline]
#[must_use]
pub fn no_swap_prob(a: u64, b: u64, k: f64) -> f64 {
    if a > b {
        return 1.0;
    }
    debug_assert!(a >= 1);
    (((a - 1) as f64) / (b as f64)).powf(k)
}

/// CDF of the eviction position in a KRR cache of size `c` (Eq. 4.2):
/// `P(position ≤ i) = (i/c)^K`.
#[inline]
#[must_use]
pub fn eviction_position_cdf(i: u64, c: u64, k: f64) -> f64 {
    debug_assert!(i <= c);
    ((i as f64) / (c as f64)).powf(k)
}

/// Inverse-CDF draw of the eviction position in a cache of size `c`:
/// `⌈ r^(1/K) · c ⌉` for `r ∈ (0, 1]`, clamped to `[1, c]`.
///
/// This is the core step of the backward stack update (Algorithm 2), which
/// calls it with `c = i - 1` to jump from swap position `i` to the next
/// lower one.
#[inline]
#[must_use]
pub fn sample_eviction_position(r: f64, c: u64, k: f64) -> u64 {
    debug_assert!(r > 0.0 && r <= 1.0, "r must be in (0,1], got {r}");
    debug_assert!(c >= 1);
    let x = (r.powf(1.0 / k) * c as f64).ceil() as u64;
    x.clamp(1, c)
}

/// Exact expectation of the number of interior swap positions for a
/// reference at stack distance `phi`:
/// `E[β] = Σ_{x=1}^{φ-1} (1 − ((x−1)/x)^K)` (Corollary 1).
///
/// O(φ); intended for tests and analysis, not the hot path.
#[must_use]
pub fn expected_swaps_exact(phi: u64, k: f64) -> f64 {
    (1..phi).map(|x| 1.0 - stay_prob(x, k)).sum()
}

/// The paper's asymptotic bound for the expected swap count:
/// `E[β] = O(K · ln φ)`; this returns `1 + K·ln(φ)` as a usable estimate.
#[must_use]
pub fn expected_swaps_bound(phi: u64, k: f64) -> f64 {
    if phi <= 1 {
        return 0.0;
    }
    1.0 + k * (phi as f64).ln()
}

/// The K′ recency-ordering correction of §4.2: for a K-LRU cache with
/// sampling size `k`, the matching KRR model should use `K′ = k^exponent`,
/// with `exponent ≈ 1.4` found empirically by the authors.
#[inline]
#[must_use]
pub fn k_prime(k: f64, exponent: f64) -> f64 {
    k.powf(exponent)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() <= tol
    }

    #[test]
    fn with_replacement_probs_sum_to_one() {
        for &k in &[1.0, 2.0, 4.0, 7.3, 16.0] {
            for &c in &[1u64, 2, 10, 1000] {
                let sum: f64 = (1..=c)
                    .map(|d| eviction_prob_with_replacement(d, c, k))
                    .sum();
                assert!(close(sum, 1.0, 1e-9), "K={k} C={c} sum={sum}");
            }
        }
    }

    #[test]
    fn without_replacement_probs_sum_to_one() {
        for &k in &[1u64, 2, 5, 10] {
            for &c in &[10u64, 100, 500] {
                let sum: f64 = (1..=c)
                    .map(|d| eviction_prob_without_replacement(d, c, k))
                    .sum();
                assert!(close(sum, 1.0, 1e-9), "K={k} C={c} sum={sum}");
            }
        }
    }

    #[test]
    fn k1_is_uniform_random_replacement() {
        let c = 100;
        for d in 1..=c {
            assert!(close(
                eviction_prob_with_replacement(d, c, 1.0),
                0.01,
                1e-12
            ));
            assert!(close(
                eviction_prob_without_replacement(d, c, 1),
                0.01,
                1e-12
            ));
        }
    }

    #[test]
    fn ranks_below_k_never_evicted_without_replacement() {
        for d in 1..5u64 {
            assert_eq!(eviction_prob_without_replacement(d, 100, 5), 0.0);
        }
        assert!(eviction_prob_without_replacement(5, 100, 5) > 0.0);
    }

    #[test]
    fn two_sampling_versions_agree_for_small_k_large_c() {
        // §3: "under relatively small K and large cache size, these two
        // versions yield approximately the same eviction probability".
        let c = 100_000;
        let k = 5u64;
        for &d in &[50_000u64, 90_000, 99_999, 100_000] {
            let a = eviction_prob_with_replacement(d, c, k as f64);
            let b = eviction_prob_without_replacement(d, c, k);
            let rel = (a - b).abs() / a.max(b);
            assert!(rel < 1e-3, "d={d}: with={a} without={b} rel={rel}");
        }
    }

    #[test]
    fn low_rank_objects_have_higher_eviction_probability() {
        let c = 1000;
        let k = 8.0;
        let mut prev = 0.0;
        for d in 1..=c {
            let q = eviction_prob_with_replacement(d, c, k);
            assert!(q >= prev, "eviction probability must grow with rank");
            prev = q;
        }
    }

    #[test]
    fn no_swap_prob_telescopes() {
        for &k in &[1.0, 3.0, 5.5] {
            let direct: f64 = (3..=17u64).map(|i| stay_prob(i, k)).product();
            assert!(close(no_swap_prob(3, 17, k), direct, 1e-12));
        }
        assert_eq!(no_swap_prob(5, 4, 2.0), 1.0);
    }

    #[test]
    fn eviction_cdf_matches_pmf_sum() {
        let c = 200;
        let k = 4.0;
        let mut acc = 0.0;
        for i in 1..=c {
            acc += eviction_prob_with_replacement(i, c, k);
            assert!(close(eviction_position_cdf(i, c, k), acc, 1e-9));
        }
    }

    #[test]
    fn inverse_cdf_clamps_and_covers_range() {
        assert_eq!(sample_eviction_position(1e-300, 10, 2.0), 1);
        assert_eq!(sample_eviction_position(1.0, 10, 2.0), 10);
        // r just below the CDF at position i maps to i; just above maps to
        // i+1 (exact boundaries are FP-sensitive and measure-zero).
        let c = 10;
        let k = 3.0;
        for i in 1..c {
            let cdf = eviction_position_cdf(i, c, k);
            assert_eq!(sample_eviction_position(cdf * (1.0 - 1e-12), c, k), i);
            assert_eq!(sample_eviction_position(cdf * (1.0 + 1e-9), c, k), i + 1);
        }
    }

    #[test]
    fn inverse_cdf_distribution_matches_pmf() {
        use crate::rng::Xoshiro256;
        let mut rng = Xoshiro256::seed_from_u64(123);
        let c = 50u64;
        let k = 6.0;
        let draws = 400_000;
        let mut counts = vec![0u64; c as usize + 1];
        for _ in 0..draws {
            counts[sample_eviction_position(rng.unit_open_low(), c, k) as usize] += 1;
        }
        for d in 1..=c {
            let expect = eviction_prob_with_replacement(d, c, k) * draws as f64;
            if expect > 2000.0 {
                let dev = (counts[d as usize] as f64 - expect).abs() / expect;
                assert!(
                    dev < 0.08,
                    "d={d} expected {expect} got {}",
                    counts[d as usize]
                );
            }
        }
    }

    #[test]
    fn expected_swaps_exact_is_logarithmic_in_phi() {
        let k = 4.0;
        let e1 = expected_swaps_exact(1_000, k);
        let e2 = expected_swaps_exact(1_000_000, k);
        // Growing phi by 1000x should add ~K*ln(1000) ≈ 27.6 swaps.
        assert!(close(e2 - e1, k * 1000f64.ln(), 0.5), "delta {}", e2 - e1);
        // And stay within the stated bound (plus slack for the +1 boundary).
        assert!(e2 <= expected_swaps_bound(1_000_000, k) + 1.0);
    }

    #[test]
    fn k_prime_correction() {
        assert!(close(k_prime(1.0, 1.4), 1.0, 1e-12));
        assert!(close(k_prime(4.0, 1.4), 4f64.powf(1.4), 1e-12));
        assert!(k_prime(8.0, 1.4) > 8.0);
    }
}
