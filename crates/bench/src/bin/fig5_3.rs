//! Figure 5.3: accuracy and time of variable-size-aware KRR (var-KRR) vs
//! the uniform-size-assumption model (uni-KRR) on 8 representative
//! variable-size traces: 4 MSR at K=8, 4 Twitter at K=16.
//!
//! Run: `cargo run --release -p krr-bench --bin fig5_3`

use krr_bench::{actual_mrc_bytes, report, requests, scale, timed, var_krr_mrc};
use krr_core::{KrrConfig, KrrModel, Mrc};
use krr_trace::{msr, twitter, Request};

fn uni_krr_mrc_bytes(trace: &[Request], k: f64, seed: u64) -> (Mrc, std::time::Duration) {
    // uni-KRR: object-granularity model; byte axis recovered by scaling
    // with the mean object size (the uniform-size assumption).
    let (objects, bytes) = krr_sim::working_set(trace);
    let mean = bytes as f64 / objects as f64;
    timed(|| {
        let mut m = KrrModel::new(KrrConfig::new(k).seed(seed));
        for r in trace {
            m.access_key(r.key);
        }
        Mrc::from_points(
            m.mrc()
                .points()
                .iter()
                .map(|&(x, y)| (x * mean, y))
                .collect(),
        )
    })
}

fn main() {
    let n = requests();
    let sc = scale();
    let cases: Vec<(String, Vec<Request>, u32)> = vec![
        ("msr_rsrch", msr::MsrTrace::Rsrch, 8u32),
        ("msr_src1", msr::MsrTrace::Src1, 8),
        ("msr_web", msr::MsrTrace::Web, 8),
        ("msr_hm", msr::MsrTrace::Hm, 8),
    ]
    .into_iter()
    .map(|(name, t, k)| {
        (
            name.to_string(),
            msr::profile(t).generate_var_size(n, 0x53, sc),
            k,
        )
    })
    .chain(twitter::TwitterCluster::ALL.iter().map(|&c| {
        (
            format!("tw_{}", c.name()),
            twitter::profile(c).generate(n, 0x54, sc, true),
            16u32,
        )
    }))
    .collect();

    let mut rows = Vec::new();
    let mut csv = Vec::new();
    for (name, trace, k) in &cases {
        let (sim, caps) = actual_mrc_bytes(trace, *k, 40, 21);
        let sizes: Vec<f64> = caps.iter().map(|&c| c as f64).collect();
        let (var, var_time) = timed(|| var_krr_mrc(trace, f64::from(*k), 1.0, 22));
        let (uni, uni_time) = uni_krr_mrc_bytes(trace, f64::from(*k), 23);
        let var_mae = sim.mae(&var, &sizes);
        let uni_mae = sim.mae(&uni, &sizes);
        rows.push(vec![
            name.clone(),
            format!("{k}"),
            format!("{uni_mae:.5}"),
            format!("{var_mae:.5}"),
            format!("{:.3}", uni_time.as_secs_f64()),
            format!("{:.3}", var_time.as_secs_f64()),
        ]);
        csv.push(format!(
            "{name},{k},{uni_mae:.6},{var_mae:.6},{:.4},{:.4}",
            uni_time.as_secs_f64(),
            var_time.as_secs_f64()
        ));
        // Per-trace curve CSV (the actual figure data).
        let curve: Vec<String> = caps
            .iter()
            .map(|&c| {
                format!(
                    "{c},{:.5},{:.5},{:.5}",
                    sim.eval(c as f64),
                    uni.eval(c as f64),
                    var.eval(c as f64)
                )
            })
            .collect();
        report::write_csv(
            &format!("fig5_3_{name}"),
            "cache_bytes,actual,uni_krr,var_krr",
            &curve,
        );
    }

    report::print_table(
        "Fig 5.3 — uni-KRR vs var-KRR (MAE vs byte-granularity simulation, and model time)",
        &[
            "trace",
            "K",
            "uni-KRR MAE",
            "var-KRR MAE",
            "uni time (s)",
            "var time (s)",
        ],
        &rows,
    );
    println!(
        "\nexpected shape: var-KRR MAE ≪ uni-KRR MAE on size-skewed traces, at a small time premium"
    );
    report::write_csv(
        "fig5_3_summary",
        "trace,k,uni_mae,var_mae,uni_secs,var_secs",
        &csv,
    );
}
