//! Table 5.4: running time on the merged "master" MSR trace —
//! KRR top-down + spatial vs KRR backward + spatial vs SHARDS, all at the
//! same sampling rate.
//!
//! The paper reports 39.1s / 22.4s / 19.7s at R = 0.001: backward KRR is
//! competitive with SHARDS, top-down roughly 2x slower. KRR times are
//! averaged over K ∈ {1, 2, 4, 8, 16, 32} as in the paper.
//!
//! Run: `cargo run --release -p krr-bench --bin table5_4`

use krr_baselines::Shards;
use krr_bench::{guarded_rate, report, requests, scale, timed};
use krr_core::{KrrConfig, KrrModel, UpdaterKind};
use krr_trace::msr;

fn main() {
    let n = requests() * 4; // the master trace merges 13 servers
    let sc = scale();
    let trace = msr::master_trace(n, 0x7AB4, sc);
    let (objects, _) = krr_sim::working_set(&trace);
    let rate = guarded_rate(0.001, objects);
    let ks = [1u32, 2, 4, 8, 16, 32];
    println!(
        "table5_4: merged MSR master trace, {} requests, {objects} objects, R = {rate:.4}",
        trace.len()
    );

    let krr_avg = |updater: UpdaterKind| -> f64 {
        let mut total = 0.0;
        for &k in &ks {
            let (_, t) = timed(|| {
                // Raw K (no K' correction) so the measured cost reflects the
                // paper's per-K stack-update accounting.
                let mut m = KrrModel::new(
                    KrrConfig::new(f64::from(k))
                        .raw_k()
                        .updater(updater)
                        .sampling(rate)
                        .seed(6),
                );
                for r in &trace {
                    m.access_key(r.key);
                }
                std::hint::black_box(m.histogram().total())
            });
            total += t.as_secs_f64();
        }
        total / ks.len() as f64
    };

    let topdown = krr_avg(UpdaterKind::TopDown);
    let backward = krr_avg(UpdaterKind::Backward);
    let (_, shards_t) = timed(|| {
        let mut s = Shards::new(rate);
        for r in &trace {
            s.access_key(r.key);
        }
        std::hint::black_box(s.counts())
    });
    let shards = shards_t.as_secs_f64();

    report::print_table(
        "Table 5.4 — master trace, time per full pass (KRR averaged over K=1..32)",
        &["method", "time (s)", "vs SHARDS"],
        &[
            vec![
                "Top Down + Spatial".into(),
                format!("{topdown:.3}"),
                format!("{:.2}x", topdown / shards),
            ],
            vec![
                "Backward + Spatial".into(),
                format!("{backward:.3}"),
                format!("{:.2}x", backward / shards),
            ],
            vec!["SHARDS".into(), format!("{shards:.3}"), "1.00x".into()],
        ],
    );
    println!("\npaper: 39.1s / 22.4s / 19.7s — backward ~ SHARDS, top-down ~2x slower");
    report::write_csv(
        "table5_4",
        "method,seconds",
        &[
            format!("topdown_spatial,{topdown:.6}"),
            format!("backward_spatial,{backward:.6}"),
            format!("shards,{shards:.6}"),
        ],
    );
}
