//! Extension experiment: why Redis approximates LRU well with only 5
//! samples — the eviction pool (§5.7's machinery, ablated).
//!
//! Sweeps `maxmemory-samples` for the mini-Redis store against exact LRU
//! and the poolless K-LRU simulator at the same K. The pool accumulates
//! good candidates across eviction cycles, so mini-Redis at samples=5
//! lands much closer to LRU than poolless K-LRU with K=5 — the design
//! insight behind Redis 3.0's eviction rewrite.
//!
//! Run: `cargo run --release -p krr-bench --bin ext_redis_pool`

use krr_bench::{report, requests, scale};
use krr_redis::MiniRedis;
use krr_sim::{Cache, Capacity, ExactLru, KLruCache};
use krr_trace::{msr, Request};

const OBJ: u32 = 200;

fn main() {
    let n = requests();
    let sc = scale();
    let raw = msr::profile(msr::MsrTrace::Prxy).generate(n, 0xE01, sc);
    let trace: Vec<Request> = raw.iter().map(|r| Request::get(r.key, OBJ)).collect();
    let (objects, _) = krr_sim::working_set(&trace);
    let memory = objects * u64::from(OBJ) / 2;
    println!(
        "ext_redis_pool: msr_prxy, {} requests, {objects} objects, memory = 50% of WSS",
        trace.len()
    );

    let mut lru = ExactLru::new(Capacity::Bytes(memory));
    for r in &trace {
        lru.access(r);
    }
    let lru_miss = lru.stats().miss_ratio();

    let mut rows = Vec::new();
    let mut csv = Vec::new();
    for samples in [1usize, 2, 3, 5, 10] {
        let mut store = MiniRedis::new(memory, samples, 7);
        let mut hits = 0u64;
        for r in &trace {
            if store.access(r) {
                hits += 1;
            }
        }
        let redis_miss = 1.0 - hits as f64 / trace.len() as f64;

        let mut klru = KLruCache::new(Capacity::Bytes(memory), samples as u32, 7);
        for r in &trace {
            klru.access(r);
        }
        let klru_miss = klru.stats().miss_ratio();

        rows.push(vec![
            format!("{samples}"),
            format!("{redis_miss:.4}"),
            format!("{klru_miss:.4}"),
            format!("{:.4}", redis_miss - lru_miss),
            format!("{:.4}", klru_miss - lru_miss),
        ]);
        csv.push(format!(
            "{samples},{redis_miss:.5},{klru_miss:.5},{lru_miss:.5}"
        ));
    }
    report::print_table(
        &format!("eviction-pool ablation (exact LRU miss = {lru_miss:.4})"),
        &[
            "samples",
            "mini-Redis",
            "poolless K-LRU",
            "Redis-LRU gap",
            "K-LRU-LRU gap",
        ],
        &rows,
    );
    println!(
        "\nexpected shape: the gap to exact LRU collapses as samples grow; the persistent \
         pool is worth roughly a couple of extra samples (visible at samples >= 5), which is \
         why Redis ships samples=5 rather than something larger"
    );
    report::write_csv(
        "ext_redis_pool",
        "samples,redis_miss,klru_miss,lru_miss",
        &csv,
    );
}
