//! Table 5.3: running-time comparison for processing one million MSR src1
//! requests at K = 5 (the Redis default):
//!
//! * Simulation — 25 cache sizes, sequential, with interpolation
//! * Basic Stack — naive O(M)-per-update Mattson scan
//! * Top Down Stack Update — Algorithm 1
//! * Backward Stack Update — Algorithm 2
//! * Top Down + Spatial (R = 0.01) and Backward + Spatial (R = 0.01)
//!
//! Absolute times differ from the paper's testbed; the *ordering and
//! ratios* (basic ≫ simulation ≫ top-down ≫ backward ≫ +spatial) are the
//! reproduced result.
//!
//! Run: `cargo run --release -p krr-bench --bin table5_3`

use krr_bench::{report, scale, timed};
use krr_core::{KrrConfig, KrrModel, UpdaterKind};
use krr_sim::{even_capacities, miss_ratio, Capacity, Policy};
use krr_trace::msr;

fn model_time(
    trace: &[krr_trace::Request],
    updater: UpdaterKind,
    rate: f64,
) -> std::time::Duration {
    let mut cfg = KrrConfig::new(5.0).updater(updater).seed(0xBEEF);
    if rate < 1.0 {
        cfg = cfg.sampling(rate);
    }
    let (_, t) = timed(|| {
        let mut m = KrrModel::new(cfg);
        for r in trace {
            m.access_key(r.key);
        }
        std::hint::black_box(m.histogram().total())
    });
    t
}

fn main() {
    let n = 1_000_000usize;
    let sc = scale();
    let trace = msr::profile(msr::MsrTrace::Src1).generate(n, 0x531, sc);
    let (objects, _) = krr_sim::working_set(&trace);
    println!("table5_3: {n} msr_src1 requests, {objects} distinct objects, K=5");

    // Simulation row: 25 evenly spaced sizes, run sequentially (the paper's
    // simulator is single-threaded).
    let caps = even_capacities(objects, 25);
    let (_, sim_time) = timed(|| {
        for (i, &c) in caps.iter().enumerate() {
            std::hint::black_box(miss_ratio(
                &trace,
                Policy::klru(5),
                Capacity::Objects(c),
                i as u64,
            ));
        }
    });

    let basic = model_time(&trace, UpdaterKind::Naive, 1.0);
    let topdown = model_time(&trace, UpdaterKind::TopDown, 1.0);
    let backward = model_time(&trace, UpdaterKind::Backward, 1.0);
    // The paper uses R=0.01 here to keep >= 8K sampled objects over 1M
    // requests.
    let topdown_sp = model_time(&trace, UpdaterKind::TopDown, 0.01);
    let backward_sp = model_time(&trace, UpdaterKind::Backward, 0.01);

    let rows: Vec<(&str, std::time::Duration)> = vec![
        ("Simulation (25 sizes)", sim_time),
        ("Basic Stack", basic),
        ("Top Down Stack Update", topdown),
        ("Backward Stack Update", backward),
        ("Top Down + Spatial (R=0.01)", topdown_sp),
        ("Backward + Spatial (R=0.01)", backward_sp),
    ];
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|(name, t)| {
            vec![
                name.to_string(),
                format!("{:.3}", t.as_secs_f64()),
                format!("x{:.0}", basic.as_secs_f64() / t.as_secs_f64()),
            ]
        })
        .collect();
    report::print_table(
        "Table 5.3 — time to process 1M msr_src1 requests (speedup vs Basic Stack)",
        &["method", "time (s)", "speedup"],
        &table,
    );
    println!(
        "\npaper (full-size trace): simulation 26s, basic 53606s, top-down 97s (x552), \
         backward 6.5s (x8247), +spatial 0.39s / 0.07s"
    );

    let csv: Vec<String> = rows
        .iter()
        .map(|(n, t)| format!("{n},{:.6}", t.as_secs_f64()))
        .collect();
    report::write_csv("table5_3", "method,seconds", &csv);
}
