//! Extension experiment (beyond the paper's tables): a shoot-out of every
//! one-pass MRC technique in this repository on the same workloads —
//! accuracy against ground truth and single-pass cost.
//!
//! * For **exact LRU**: Olken, SHARDS (R=0.01), SHARDS_max (8K), AET,
//!   CounterStacks, and KRR with a large effective K.
//! * For **K-LRU (K=5)**: KRR, KRR+spatial, and miniature simulation —
//!   the paper's technique vs the generic Waldspurger ATC'17 fallback.
//!
//! Run: `cargo run --release -p krr-bench --bin ext_baselines`

use krr_baselines::{Aet, CounterStacks, OlkenLru, Shards, ShardsMax};
use krr_bench::{guarded_rate, krr_mrc, report, requests, scale, threads, timed};
use krr_core::Mrc;
use krr_sim::{even_capacities, simulate_mrc, KLruCache, MiniSim, Policy, Unit};
use krr_trace::{msr, ycsb, Request};

fn main() {
    let n = requests();
    let sc = scale();
    let traces: Vec<(&str, Vec<Request>)> = vec![
        (
            "ycsb_C_0.99",
            ycsb::WorkloadC::new(((1e6 * sc) as u64).max(1000), 0.99).generate(n, 1),
        ),
        (
            "msr_web",
            msr::profile(msr::MsrTrace::Web).generate(n, 2, sc),
        ),
    ];

    for (name, trace) in &traces {
        let (objects, _) = krr_sim::working_set(trace);
        let caps = even_capacities(objects, 25);
        let sizes: Vec<f64> = caps.iter().map(|&c| c as f64).collect();
        let rate = guarded_rate(0.01, objects);

        // ---- exact-LRU techniques --------------------------------------
        let lru_truth = simulate_mrc(trace, Policy::ExactLru, Unit::Objects, &caps, 3, threads());
        let mut rows = Vec::new();
        let mut run = |label: &str, f: &mut dyn FnMut() -> Mrc| {
            let (mrc, t) = timed(f);
            rows.push(vec![
                label.to_string(),
                format!("{:.5}", lru_truth.mae(&mrc, &sizes)),
                format!("{:.3}", t.as_secs_f64()),
            ]);
        };
        run("Olken (exact)", &mut || {
            let mut o = OlkenLru::new();
            for r in trace {
                o.access_key(r.key);
            }
            o.mrc()
        });
        run(&format!("SHARDS-adj (R={rate:.3})"), &mut || {
            // The adjusted variant; without the count correction hot-key
            // sampling variance costs ~5-9e-2 MAE at these rates (same
            // effect the KRR model corrects, DESIGN.md §6).
            let mut s = Shards::with_adjustment(rate, true);
            for r in trace {
                s.access_key(r.key);
            }
            s.mrc()
        });
        run("SHARDS_max (8K objs)", &mut || {
            let mut s = ShardsMax::new(8_192);
            for r in trace {
                s.access_key(r.key);
            }
            s.mrc()
        });
        run("AET", &mut || {
            let mut a = Aet::with_bin_width(4);
            for r in trace {
                a.access_key(r.key);
            }
            a.mrc()
        });
        run("CounterStacks", &mut || {
            let mut cs = CounterStacks::with_defaults();
            for r in trace {
                cs.access_key(r.key);
            }
            cs.mrc()
        });
        run("KRR (K'=64, ~LRU)", &mut || krr_mrc(trace, 64.0, 1.0, 9));
        report::print_table(
            &format!("{name} — exact-LRU MRC techniques (MAE vs LRU simulation)"),
            &["method", "MAE", "time (s)"],
            &rows,
        );
        report::write_csv(
            &format!("ext_baselines_lru_{name}"),
            "method,mae,seconds",
            &rows.iter().map(|r| r.join(",")).collect::<Vec<_>>(),
        );

        // ---- K-LRU techniques -------------------------------------------
        let k = 5u32;
        let truth = simulate_mrc(trace, Policy::klru(k), Unit::Objects, &caps, 5, threads());
        let mut rows = Vec::new();
        let (mrc, t) = timed(|| krr_mrc(trace, f64::from(k), 1.0, 11));
        rows.push(vec![
            "KRR".into(),
            format!("{:.5}", truth.mae(&mrc, &sizes)),
            format!("{:.3}", t.as_secs_f64()),
        ]);
        let (mrc, t) = timed(|| krr_mrc(trace, f64::from(k), rate, 12));
        rows.push(vec![
            format!("KRR+spatial (R={rate:.3})"),
            format!("{:.5}", truth.mae(&mrc, &sizes)),
            format!("{:.3}", t.as_secs_f64()),
        ]);
        let mini_rate = guarded_rate(0.05, objects);
        let (mrc, t) = timed(|| {
            let mut ms = MiniSim::new(
                &caps,
                mini_rate,
                |c| Box::new(KLruCache::new(c, k, 13)),
                false,
            );
            for r in trace {
                ms.access(r);
            }
            ms.mrc()
        });
        rows.push(vec![
            format!("MiniSim x{} (R={mini_rate:.3})", caps.len()),
            format!("{:.5}", truth.mae(&mrc, &sizes)),
            format!("{:.3}", t.as_secs_f64()),
        ]);
        report::print_table(
            &format!("{name} — K-LRU (K=5) MRC techniques (MAE vs K-LRU simulation)"),
            &["method", "MAE", "time (s)"],
            &rows,
        );
        report::write_csv(
            &format!("ext_baselines_klru_{name}"),
            "method,mae,seconds",
            &rows.iter().map(|r| r.join(",")).collect::<Vec<_>>(),
        );
    }
    println!(
        "\nexpected shape: KRR matches MiniSim's accuracy on K-LRU at a fraction of the cost \
         (MiniSim runs one cache per size); exact-LRU techniques are accurate for LRU but \
         (Fig 5.2a) not for small-K K-LRU."
    );
}
