//! Figure 5.4: normalized average stack-update overhead against K = 1 for
//! the YCSB, MSR and Twitter families (backward updater).
//!
//! Corollary 1: expected swap count grows ~linearly in K, so the overhead
//! at K = 16 should be no more than a few times that of K = 1.
//!
//! Run: `cargo run --release -p krr-bench --bin fig5_4`

use krr_bench::workloads::{all_specs, Family};
use krr_bench::{report, requests, scale, timed};
use krr_core::{KrrConfig, KrrModel};
use std::collections::BTreeMap;

fn main() {
    let ks = [1u32, 2, 4, 8, 16, 32];
    let n = requests();
    let sc = scale();
    println!("fig5_4: stack-update overhead vs K (backward update), {n} requests per trace");

    // family -> per-K total seconds
    let mut acc: BTreeMap<String, Vec<f64>> = BTreeMap::new();
    for spec in all_specs() {
        let trace = spec.generate(n, 0xF54, sc);
        for (i, &k) in ks.iter().enumerate() {
            // Model with K' correction disabled so the measured cost is the
            // pure effect of K on swap-chain length (as in the paper's
            // stack-update accounting).
            let (_, t) = timed(|| {
                let mut m = KrrModel::new(KrrConfig::new(f64::from(k)).raw_k().seed(5));
                for r in &trace {
                    m.access_key(r.key);
                }
                std::hint::black_box(m.histogram().total())
            });
            acc.entry(spec.family.to_string())
                .or_insert_with(|| vec![0.0; ks.len()])[i] += t.as_secs_f64();
        }
    }

    let mut rows = Vec::new();
    let mut csv = Vec::new();
    for fam in [Family::Ycsb, Family::Msr, Family::Twitter] {
        let times = &acc[&fam.to_string()];
        let base = times[0];
        let mut row = vec![fam.to_string()];
        for (i, &k) in ks.iter().enumerate() {
            row.push(format!("{:.2}", times[i] / base));
            csv.push(format!("{fam},{k},{:.4},{:.6}", times[i] / base, times[i]));
        }
        rows.push(row);
    }
    let header: Vec<String> = std::iter::once("family".to_string())
        .chain(ks.iter().map(|k| format!("K={k}")))
        .collect();
    report::print_table(
        "Fig 5.4 — stack-update overhead normalized to K=1",
        &header.iter().map(String::as_str).collect::<Vec<_>>(),
        &rows,
    );
    println!("\npaper: overhead for K <= 16 is generally no more than 4x that of K = 1");
    report::write_csv("fig5_4", "family,k,normalized,seconds", &csv);
}
