//! Ablation (not in the paper's tables): the K′ = K^e recency correction of
//! §4.2. Sweeps the exponent e over [1.0, 1.8] on a normal trace, the loop
//! worst case, and a Type A MSR trace, reporting MAE vs the simulated
//! K-LRU MRC. The paper's claim: e ≈ 1.4 is a good universal choice.
//!
//! Run: `cargo run --release -p krr-bench --bin ablation_kprime`

use krr_bench::{actual_mrc, report, requests, scale};
use krr_core::{KrrConfig, KrrModel};
use krr_trace::{msr, patterns, ycsb, Request};

fn mae_for_exponent(
    sim: &krr_core::Mrc,
    sizes: &[f64],
    trace: &[Request],
    k: u32,
    exponent: f64,
) -> f64 {
    let mut m = KrrModel::new(
        KrrConfig::new(f64::from(k))
            .kprime_exponent(exponent)
            .seed(42),
    );
    for r in trace {
        m.access_key(r.key);
    }
    sim.mae(&m.mrc(), sizes)
}

fn main() {
    let n = requests();
    let sc = scale();
    let exponents = [1.0, 1.1, 1.2, 1.3, 1.4, 1.5, 1.6, 1.8];
    let ks = [4u32, 8, 16];
    let traces: Vec<(&str, Vec<Request>)> = vec![
        (
            "ycsb_C_0.99",
            ycsb::WorkloadC::new(((1e6 * sc) as u64).max(1000), 0.99).generate(n, 1),
        ),
        (
            "loop",
            patterns::loop_trace(((2e4 * sc * 10.0) as u64).max(1000), n),
        ),
        (
            "msr_web",
            msr::profile(msr::MsrTrace::Web).generate(n, 2, sc),
        ),
    ];

    let mut rows = Vec::new();
    let mut csv = Vec::new();
    for (name, trace) in &traces {
        for &k in &ks {
            // Simulate the ground truth once per (trace, K); only the model
            // re-runs per exponent.
            let (sim, caps) = actual_mrc(trace, k, 30, 41);
            let sizes: Vec<f64> = caps.iter().map(|&c| c as f64).collect();
            let mut row = vec![name.to_string(), format!("{k}")];
            let mut best = (f64::INFINITY, 0.0);
            for &e in &exponents {
                let mae = mae_for_exponent(&sim, &sizes, trace, k, e);
                if mae < best.0 {
                    best = (mae, e);
                }
                row.push(format!("{mae:.4}"));
                csv.push(format!("{name},{k},{e},{mae:.6}"));
            }
            row.push(format!("{}", best.1));
            rows.push(row);
        }
    }
    let mut header = vec!["trace".to_string(), "K".to_string()];
    header.extend(exponents.iter().map(|e| format!("e={e}")));
    header.push("best e".to_string());
    report::print_table(
        "Ablation — MAE vs K' exponent (paper recommends e ≈ 1.4)",
        &header.iter().map(String::as_str).collect::<Vec<_>>(),
        &rows,
    );
    report::write_csv("ablation_kprime", "trace,k,exponent,mae", &csv);
}
