//! Figure 5.1: actual vs predicted K-LRU MRCs for two representative
//! traces — YCSB E (α = 1.5) and MSR src1 — with K ∈ {1, 4, 16}, plus the
//! exact LRU curve.
//!
//! Run: `cargo run --release -p krr-bench --bin fig5_1`

use krr_bench::{guarded_rate, krr_mrc, report, requests, scale, threads};
use krr_sim::{even_capacities, simulate_mrc, Policy, Unit};
use krr_trace::{msr, ycsb};

fn main() {
    let ks = [1u32, 4, 16];
    let n = requests();
    let sc = scale();

    let traces: Vec<(String, Vec<krr_trace::Request>)> = vec![
        ("ycsb_E_1.5".into(), {
            let records = ((100_000.0 * sc) as u64).max(500);
            let mut t = ycsb::WorkloadE::new(records, 1.5).generate(n, 5);
            t.truncate(n);
            t
        }),
        (
            "msr_src1".into(),
            msr::profile(msr::MsrTrace::Src1).generate(n, 6, sc),
        ),
    ];

    for (name, trace) in &traces {
        let (objects, _) = krr_sim::working_set(trace);
        let caps = even_capacities(objects, 40);
        let rate = guarded_rate(0.001, objects);
        println!("\nfig5_1 [{name}]: {objects} objects, spatial rate {rate:.4}");

        let lru = simulate_mrc(trace, Policy::ExactLru, Unit::Objects, &caps, 3, threads());
        let mut columns: Vec<(String, krr_core::Mrc)> = vec![("LRU".into(), lru)];
        for &k in &ks {
            let actual = simulate_mrc(trace, Policy::klru(k), Unit::Objects, &caps, 4, threads());
            let predicted = krr_mrc(trace, f64::from(k), 1.0, 7);
            let spatial = krr_mrc(trace, f64::from(k), rate, 8);
            columns.push((format!("actual_K{k}"), actual));
            columns.push((format!("krr_K{k}"), predicted));
            columns.push((format!("krr_sp_K{k}"), spatial));
        }

        let header: Vec<String> = std::iter::once("cache size".to_string())
            .chain(columns.iter().map(|(n, _)| n.clone()))
            .collect();
        let rows: Vec<Vec<String>> = caps
            .iter()
            .step_by(4)
            .map(|&c| {
                std::iter::once(format!("{c}"))
                    .chain(
                        columns
                            .iter()
                            .map(|(_, m)| format!("{:.3}", m.eval(c as f64))),
                    )
                    .collect()
            })
            .collect();
        report::print_table(
            &format!("Fig 5.1 — {name}: actual vs predicted K-LRU MRCs"),
            &header.iter().map(String::as_str).collect::<Vec<_>>(),
            &rows,
        );

        // Per-K MAE summary (the figure's visual message, quantified).
        let sizes: Vec<f64> = caps.iter().map(|&c| c as f64).collect();
        for &k in &ks {
            let actual = &columns
                .iter()
                .find(|(n, _)| n == &format!("actual_K{k}"))
                .unwrap()
                .1;
            let krr = &columns
                .iter()
                .find(|(n, _)| n == &format!("krr_K{k}"))
                .unwrap()
                .1;
            let sp = &columns
                .iter()
                .find(|(n, _)| n == &format!("krr_sp_K{k}"))
                .unwrap()
                .1;
            println!(
                "  K={k:<2}: MAE(KRR) = {:.5}, MAE(KRR+spatial) = {:.5}",
                actual.mae(krr, &sizes),
                actual.mae(sp, &sizes)
            );
        }

        let csv_rows: Vec<String> = caps
            .iter()
            .map(|&c| {
                let vals: Vec<String> = columns
                    .iter()
                    .map(|(_, m)| format!("{:.5}", m.eval(c as f64)))
                    .collect();
                format!("{c},{}", vals.join(","))
            })
            .collect();
        let csv_header = std::iter::once("cache_size".to_string())
            .chain(columns.iter().map(|(n, _)| n.clone()))
            .collect::<Vec<_>>()
            .join(",");
        report::write_csv(&format!("fig5_1_{name}"), &csv_header, &csv_rows);
    }
}
