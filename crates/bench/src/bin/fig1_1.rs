//! Figure 1.1: MRCs of MSR web under K-LRU with K ∈ {1, 2, 4, 8, 16, 32}.
//!
//! Reproduces the motivating observation: sampling size K has a large
//! impact on a K-LRU cache's miss ratio on a Type A trace.
//!
//! Run: `cargo run --release -p krr-bench --bin fig1_1`

use krr_bench::{report, requests, scale, threads};
use krr_sim::{even_capacities, simulate_mrc, Policy, Unit};
use krr_trace::msr;

fn main() {
    let ks = [1u32, 2, 4, 8, 16, 32];
    let trace = msr::profile(msr::MsrTrace::Web).generate(requests(), 101, scale());
    let (objects, _) = krr_sim::working_set(&trace);
    let caps = even_capacities(objects, 40);
    println!(
        "fig1_1: msr_web, {} requests, {objects} objects, 40 cache sizes, K = {ks:?}",
        trace.len()
    );

    let curves: Vec<_> = ks
        .iter()
        .map(|&k| simulate_mrc(&trace, Policy::klru(k), Unit::Objects, &caps, 7, threads()))
        .collect();

    // Stdout table at a readable subset of sizes.
    let show: Vec<u64> = caps.iter().copied().step_by(4).collect();
    let header: Vec<String> = std::iter::once("cache size".to_string())
        .chain(ks.iter().map(|k| format!("K={k}")))
        .collect();
    let rows: Vec<Vec<String>> = show
        .iter()
        .map(|&c| {
            std::iter::once(format!("{c}"))
                .chain(curves.iter().map(|m| format!("{:.3}", m.eval(c as f64))))
                .collect()
        })
        .collect();
    report::print_table(
        "Fig 1.1 — MSR web miss ratio under different Ks",
        &header.iter().map(String::as_str).collect::<Vec<_>>(),
        &rows,
    );

    // Spread summary: the paper's point is a visible gap between Ks.
    let mut max_spread = (0u64, 0.0f64);
    for &c in &caps {
        let vals: Vec<f64> = curves.iter().map(|m| m.eval(c as f64)).collect();
        let spread = vals.iter().cloned().fold(f64::MIN, f64::max)
            - vals.iter().cloned().fold(f64::MAX, f64::min);
        if spread > max_spread.1 {
            max_spread = (c, spread);
        }
    }
    println!(
        "\nmax K=1..32 miss-ratio spread: {:.3} at cache size {} ({:.0}% of WSS)",
        max_spread.1,
        max_spread.0,
        100.0 * max_spread.0 as f64 / objects as f64
    );

    let csv_rows: Vec<String> = caps
        .iter()
        .map(|&c| {
            let vals: Vec<String> = curves
                .iter()
                .map(|m| format!("{:.5}", m.eval(c as f64)))
                .collect();
            format!("{c},{}", vals.join(","))
        })
        .collect();
    report::write_csv("fig1_1", "cache_size,K1,K2,K4,K8,K16,K32", &csv_rows);
}
