//! Figure 5.5: validating KRR against (mini-)Redis on msr src2, web and
//! proj — Redis MRCs from 50 memory sizes, the in-house K-LRU simulator,
//! and KRR + spatial sampling, all with 200-byte objects and K = 5.
//!
//! Run: `cargo run --release -p krr-bench --bin fig5_5`

use krr_bench::{guarded_rate, krr_mrc, report, requests, scale, threads};
use krr_core::Mrc;
use krr_redis::{MiniRedis, SamplingMode};
use krr_sim::{even_capacities, simulate_mrc, Policy, Unit};
use krr_trace::{msr, Request};
use std::sync::atomic::{AtomicUsize, Ordering};

const K: u32 = 5;
const OBJ: u32 = 200;

fn redis_mrc(trace: &[Request], mems: &[u64], mode: SamplingMode) -> Mrc {
    // Each memory size is an independent store run; fan out like the
    // simulator harness does.
    let next = AtomicUsize::new(0);
    let partials: Vec<Vec<(f64, f64)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads().min(mems.len()))
            .map(|_| {
                scope.spawn(|| {
                    let mut local = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= mems.len() {
                            break;
                        }
                        let mem = mems[i];
                        let mut store =
                            MiniRedis::with_mode(mem, K as usize, mode, 0xF55 ^ i as u64);
                        let mut hits = 0u64;
                        for r in trace {
                            if store.access(r) {
                                hits += 1;
                            }
                        }
                        local.push((mem as f64, 1.0 - hits as f64 / trace.len() as f64));
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("redis run panicked"))
            .collect()
    });
    let mut points = vec![(0.0, 1.0)];
    points.extend(partials.into_iter().flatten());
    let mut mrc = Mrc::from_points(points);
    mrc.make_monotone();
    mrc
}

fn main() {
    let n = requests();
    let sc = scale();
    for t in [msr::MsrTrace::Src2, msr::MsrTrace::Web, msr::MsrTrace::Proj] {
        let name = format!("msr_{}", t.name());
        let raw = msr::profile(t).generate(n, 0x555, sc);
        let trace: Vec<Request> = raw.iter().map(|r| Request::get(r.key, OBJ)).collect();
        let (objects, _) = krr_sim::working_set(&trace);
        let total_bytes = objects * u64::from(OBJ);
        let mems = even_capacities(total_bytes, 50);
        let rate = guarded_rate(0.001, objects);
        println!(
            "\nfig5_5 [{name}]: {objects} objects x {OBJ}B, 50 Redis memory sizes, R={rate:.4}"
        );

        let redis = redis_mrc(&trace, &mems, SamplingMode::ClusteredWalk);
        let redis_fair = redis_mrc(&trace, &mems, SamplingMode::UniformRandom);
        let sim = simulate_mrc(&trace, Policy::klru(K), Unit::Bytes, &mems, 3, threads());
        // KRR runs at object granularity; scale the axis to bytes.
        let krr = Mrc::from_points(
            krr_mrc(&trace, f64::from(K), rate, 4)
                .points()
                .iter()
                .map(|&(x, y)| (x * f64::from(OBJ), y))
                .collect(),
        );

        let sizes: Vec<f64> = mems.iter().map(|&m| m as f64).collect();
        let rows = vec![
            vec![
                "KRR+spatial vs mini-Redis".to_string(),
                format!("{:.5}", redis.mae(&krr, &sizes)),
            ],
            vec![
                "simulator vs mini-Redis".to_string(),
                format!("{:.5}", redis.mae(&sim, &sizes)),
            ],
            vec![
                "simulator vs mini-Redis (fair sampling)".to_string(),
                format!("{:.5}", redis_fair.mae(&sim, &sizes)),
            ],
        ];
        report::print_table(
            &format!("Fig 5.5 — {name} (MAE over 50 sizes)"),
            &["pair", "MAE"],
            &rows,
        );

        let csv: Vec<String> = mems
            .iter()
            .map(|&m| {
                format!(
                    "{m},{:.5},{:.5},{:.5},{:.5}",
                    redis.eval(m as f64),
                    redis_fair.eval(m as f64),
                    sim.eval(m as f64),
                    krr.eval(m as f64)
                )
            })
            .collect();
        report::write_csv(
            &format!("fig5_5_{name}"),
            "memory_bytes,redis_clustered,redis_fair,simulator,krr_spatial",
            &csv,
        );
    }
    println!(
        "\nexpected shape: KRR ≈ simulator ≈ mini-Redis; the clustered-sampling Redis deviates \
         slightly more than the fair-sampling variant (§5.7 footnote 3)"
    );
}
