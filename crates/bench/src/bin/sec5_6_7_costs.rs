//! Sections 5.6 (space cost) and 5.7's overhead claim, quantified:
//!
//! * §5.6: per-object footprint of the KRR stack, and the total footprint
//!   as a percentage of the working set under spatial sampling (the paper
//!   computes 72 B × R / avg-object-size; with R = 0.001 and 200 B objects
//!   that is 0.036% of the working set).
//! * §5.7: fraction of a cache server's execution time consumed by an
//!   attached KRR profiler (paper: 0.08–0.11% on Redis). Measured here as
//!   (time with profiler − time without) / time with, using mini-Redis at
//!   50% of the working set.
//!
//! Run: `cargo run --release -p krr-bench --bin sec5_6_7_costs`

use krr_bench::{guarded_rate, report, requests, scale, timed};
use krr_core::{KrrConfig, KrrModel};
use krr_redis::MiniRedis;
use krr_trace::{msr, Request};

fn main() {
    let n = requests();
    let sc = scale();
    let obj_size = 200u32; // §5.6/5.7 use 200 B objects

    // ---- §5.6 space cost --------------------------------------------
    let trace = msr::profile(msr::MsrTrace::Web).generate(n, 0x56C, sc);
    let (objects, _) = krr_sim::working_set(&trace);
    let rate = guarded_rate(0.001, objects);
    let mut model = KrrModel::new(KrrConfig::new(5.0).sampling(rate).seed(1));
    for r in &trace {
        model.access_key(r.key);
    }
    let footprint = model.memory_bytes();
    let tracked = model.stats().distinct;
    let per_object = footprint as f64 / tracked.max(1) as f64;
    let working_set_bytes = objects * u64::from(obj_size);
    let pct = 100.0 * footprint as f64 / working_set_bytes as f64;
    report::print_table(
        "§5.6 — KRR space cost (msr_web, 200 B objects)",
        &["metric", "value"],
        &[
            vec!["working set (objects)".into(), format!("{objects}")],
            vec!["spatial rate R".into(), format!("{rate:.4}")],
            vec!["tracked (sampled) objects".into(), format!("{tracked}")],
            vec![
                "profiler footprint".into(),
                format!("{:.1} KiB", footprint as f64 / 1024.0),
            ],
            vec![
                "bytes per tracked object".into(),
                format!("{per_object:.1}"),
            ],
            vec!["% of working set".into(), format!("{pct:.4}%")],
        ],
    );
    println!(
        "paper: 72 B/object; 0.036% of working set at R=0.001 with 200 B objects; <1 MB on Redis"
    );

    // ---- §5.7 profiler overhead on a live cache ----------------------
    let kv: Vec<Request> = trace
        .iter()
        .map(|r| Request::get(r.key, obj_size))
        .collect();
    let memory = working_set_bytes / 2; // "approximately 50% of the working set"
    let (_, base) = timed(|| {
        let mut store = MiniRedis::new(memory, 5, 2);
        for r in &kv {
            store.access(r);
        }
        std::hint::black_box(store.stats().hits)
    });
    let timed_with = |r: f64| {
        let (_, t) = timed(|| {
            let mut store = MiniRedis::new(memory, 5, 2);
            let mut profiler = KrrModel::new(KrrConfig::new(5.0).sampling(r).seed(3));
            for req in &kv {
                profiler.access_key(req.key);
                store.access(req);
            }
            std::hint::black_box((store.stats().hits, profiler.histogram().total()))
        });
        t
    };
    // At the guarded rate (accuracy-preserving for this working set) and at
    // the paper's production rate R = 0.001. Note mini-Redis does no
    // network/RESP work, so the profiler's *relative* share is inflated
    // compared to a real server.
    let with = timed_with(rate);
    let with_paper_rate = timed_with(0.001);
    let share = |t: std::time::Duration| {
        100.0 * (t.as_secs_f64() - base.as_secs_f64()).max(0.0) / t.as_secs_f64()
    };
    report::print_table(
        "§5.7 — profiler overhead inside a mini-Redis serving loop",
        &["metric", "value"],
        &[
            vec!["store alone".into(), format!("{:.3} s", base.as_secs_f64())],
            vec![
                format!("store + profiler (R={rate:.3})"),
                format!("{:.3} s  ({:.2}% share)", with.as_secs_f64(), share(with)),
            ],
            vec![
                "store + profiler (R=0.001)".into(),
                format!(
                    "{:.3} s  ({:.2}% share)",
                    with_paper_rate.as_secs_f64(),
                    share(with_paper_rate)
                ),
            ],
        ],
    );
    println!("paper: 0.08-0.11% of total execution time at R=0.001; KRR stack stayed under 1 MB");
    let overhead = share(with_paper_rate);

    report::write_csv(
        "sec5_6_7_costs",
        "metric,value",
        &[
            format!("footprint_bytes,{footprint}"),
            format!("bytes_per_object,{per_object:.2}"),
            format!("working_set_pct,{pct:.5}"),
            format!("overhead_pct,{overhead:.3}"),
        ],
    );
}
