//! Figure 5.2: MRCs of traces under K-LRU (K ∈ {1..32}) and exact LRU,
//! split into Type A (K-sensitive) and Type B (K-insensitive) families.
//!
//! Run: `cargo run --release -p krr-bench --bin fig5_2`

use krr_bench::workloads::fig5_2_specs;
use krr_bench::{report, requests, scale, threads};
use krr_sim::{even_capacities, simulate_mrc, Policy, Unit};

fn main() {
    let ks = [1u32, 2, 4, 8, 16, 32];
    let n = requests();
    let sc = scale();
    let (type_a, type_b) = fig5_2_specs();

    let mut summary_rows = Vec::new();
    for (label, specs) in [("A", &type_a), ("B", &type_b)] {
        for spec in specs {
            let trace = spec.generate(n, 0xF52, sc);
            let (objects, _) = krr_sim::working_set(&trace);
            let caps = even_capacities(objects, 40);
            let sizes: Vec<f64> = caps.iter().map(|&c| c as f64).collect();
            let lru = simulate_mrc(&trace, Policy::ExactLru, Unit::Objects, &caps, 2, threads());

            let mut csv_rows: Vec<String> = Vec::new();
            let mut curves = Vec::new();
            for &k in &ks {
                curves.push(simulate_mrc(
                    &trace,
                    Policy::klru(k),
                    Unit::Objects,
                    &caps,
                    3,
                    threads(),
                ));
            }
            for (i, &c) in caps.iter().enumerate() {
                let _ = i;
                let vals: Vec<String> = curves
                    .iter()
                    .map(|m| format!("{:.5}", m.eval(c as f64)))
                    .collect();
                csv_rows.push(format!("{c},{},{:.5}", vals.join(","), lru.eval(c as f64)));
            }
            report::write_csv(
                &format!("fig5_2_{}", spec.name),
                "cache_size,K1,K2,K4,K8,K16,K32,LRU",
                &csv_rows,
            );

            // The defining metric: gap between K=1 and LRU.
            let gap = curves[0].mae(&lru, &sizes);
            let k32_gap = curves[5].mae(&lru, &sizes);
            summary_rows.push(vec![
                spec.name.clone(),
                label.to_string(),
                format!("{objects}"),
                format!("{gap:.4}"),
                format!("{k32_gap:.4}"),
            ]);
            println!(
                "{:<16} type {label}: K1-vs-LRU gap {gap:.4}, K32-vs-LRU {k32_gap:.4}",
                spec.name
            );
        }
    }

    report::print_table(
        "Fig 5.2 — Type A vs Type B (MAE between K-LRU and exact LRU MRCs)",
        &["trace", "type", "objects", "K=1 vs LRU", "K=32 vs LRU"],
        &summary_rows,
    );
    println!(
        "\nexpected shape: Type A gaps ≫ Type B gaps; K=32 converges to LRU everywhere (§5.3)"
    );
}
