//! Table 5.1: average MAE of KRR (and KRR + spatial sampling) against the
//! simulated K-LRU MRC, per workload family, for K ∈ {1, 2, 4, 8, 16, 32}.
//!
//! Run: `cargo run --release -p krr-bench --bin table5_1`
//! (set `KRR_REQS` / `KRR_SCALE` to grow the workloads)

use krr_bench::workloads::{all_specs, Family};
use krr_bench::{actual_mrc, guarded_rate, krr_mrc, report, requests, scale};
use std::collections::BTreeMap;

fn main() {
    let ks = [1u32, 2, 4, 8, 16, 32];
    let n = requests();
    let sc = scale();
    println!(
        "table5_1: {} traces x K={ks:?}, {n} requests each, scale {sc}",
        all_specs().len()
    );

    // family -> k -> (sum of MAE, sum of MAE with sampling, count)
    let mut acc: BTreeMap<(String, u32), (f64, f64, u32)> = BTreeMap::new();
    let mut csv = Vec::new();

    for spec in all_specs() {
        let trace = spec.generate(n, 0xA11CE, sc);
        let (objects, _) = krr_sim::working_set(&trace);
        let rate = guarded_rate(0.001, objects);
        for &k in &ks {
            let (sim, caps) = actual_mrc(&trace, k, 40, 11);
            let sizes: Vec<f64> = caps.iter().map(|&c| c as f64).collect();
            let full = krr_mrc(&trace, f64::from(k), 1.0, 22);
            let sampled = krr_mrc(&trace, f64::from(k), rate, 33);
            let mae_full = sim.mae(&full, &sizes);
            let mae_samp = sim.mae(&sampled, &sizes);
            let e = acc
                .entry((spec.family.to_string(), k))
                .or_insert((0.0, 0.0, 0));
            e.0 += mae_full;
            e.1 += mae_samp;
            e.2 += 1;
            csv.push(format!(
                "{},{},{k},{mae_full:.6},{mae_samp:.6},{rate:.4}",
                spec.name, spec.family
            ));
            println!(
                "  {:<18} K={k:<2} MAE={mae_full:.5}  +spatial={mae_samp:.5}",
                spec.name
            );
        }
    }

    // Assemble the paper's table: rows = family, cols = K (KRR block then
    // KRR+spatial block).
    let mut header = vec!["family".to_string()];
    header.extend(ks.iter().map(|k| format!("KRR K={k}")));
    header.extend(ks.iter().map(|k| format!("+Sp K={k}")));
    let mut rows = Vec::new();
    let mut overall = (0.0f64, 0.0f64, 0u32);
    for fam in [Family::Msr, Family::Ycsb, Family::Twitter] {
        let mut row = vec![fam.to_string()];
        for &k in &ks {
            let (s, _, c) = acc[&(fam.to_string(), k)];
            row.push(format!("{:.5}", s / f64::from(c)));
        }
        for &k in &ks {
            let (s, sp, c) = acc[&(fam.to_string(), k)];
            row.push(format!("{:.5}", sp / f64::from(c)));
            overall.0 += s;
            overall.1 += sp;
            overall.2 += c;
        }
        rows.push(row);
    }
    report::print_table(
        "Table 5.1 — average MAE per family (KRR | KRR+spatial)",
        &header.iter().map(String::as_str).collect::<Vec<_>>(),
        &rows,
    );
    println!(
        "\noverall average MAE: KRR {:.5}, KRR+spatial {:.5} (paper: 0.00099 / 0.0026)",
        overall.0 / f64::from(overall.2),
        overall.1 / f64::from(overall.2)
    );

    report::write_csv(
        "table5_1",
        "trace,family,k,mae_krr,mae_krr_spatial,rate",
        &csv,
    );
}
