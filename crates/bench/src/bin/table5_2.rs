//! Table 5.2: MAE of variable-size-aware KRR (var-KRR), with and without
//! spatial sampling, on variable-size MSR and Twitter workloads, for
//! K ∈ {1, 2, 4, 8, 16, 32}.
//!
//! Run: `cargo run --release -p krr-bench --bin table5_2`

use krr_bench::workloads::{msr_specs, twitter_specs, Family};
use krr_bench::{actual_mrc_bytes, guarded_rate, report, requests, scale, var_krr_mrc};
use std::collections::BTreeMap;

fn main() {
    let ks = [1u32, 2, 4, 8, 16, 32];
    let n = requests();
    let sc = scale();
    // The paper evaluates var-size on MSR and Twitter; a subset of MSR keeps
    // the default run quick (all 13 at KRR_SCALE >= 0.2).
    let mut specs = msr_specs();
    if sc < 0.2 {
        specs.truncate(6);
    }
    specs.extend(twitter_specs());
    println!(
        "table5_2: {} var-size traces x K={ks:?}, {n} requests each",
        specs.len()
    );

    let mut acc: BTreeMap<(String, u32), (f64, f64, u32)> = BTreeMap::new();
    let mut csv = Vec::new();
    for spec in &specs {
        let trace = spec.generate_var(n, 0x7AB2, sc);
        let (objects, _) = krr_sim::working_set(&trace);
        let rate = guarded_rate(0.001, objects);
        for &k in &ks {
            let (sim, caps) = actual_mrc_bytes(&trace, k, 40, 9);
            let sizes: Vec<f64> = caps.iter().map(|&c| c as f64).collect();
            let full = var_krr_mrc(&trace, f64::from(k), 1.0, 10);
            let sampled = var_krr_mrc(&trace, f64::from(k), rate, 11);
            let mae_full = sim.mae(&full, &sizes);
            let mae_samp = sim.mae(&sampled, &sizes);
            let e = acc
                .entry((spec.family.to_string(), k))
                .or_insert((0.0, 0.0, 0));
            e.0 += mae_full;
            e.1 += mae_samp;
            e.2 += 1;
            csv.push(format!(
                "{},{},{k},{mae_full:.6},{mae_samp:.6},{rate:.4}",
                spec.name, spec.family
            ));
            println!(
                "  {:<18} K={k:<2} varKRR={mae_full:.5}  +spatial={mae_samp:.5}",
                spec.name
            );
        }
    }

    let mut rows = Vec::new();
    for &k in &ks {
        let msr = acc[&(Family::Msr.to_string(), k)];
        let tw = acc[&(Family::Twitter.to_string(), k)];
        rows.push(vec![
            format!("{k}"),
            format!("{:.5}", msr.0 / f64::from(msr.2)),
            format!("{:.5}", tw.0 / f64::from(tw.2)),
            format!("{:.5}", msr.1 / f64::from(msr.2)),
            format!("{:.5}", tw.1 / f64::from(tw.2)),
        ]);
    }
    report::print_table(
        "Table 5.2 — var-KRR MAE (paper averages: MSR 0.00080, Twitter 0.00025; +spatial 0.00143 / 0.00210)",
        &["K", "Var-KRR MSR", "Var-KRR Twitter", "+Spatial MSR", "+Spatial Twitter"],
        &rows,
    );
    report::write_csv(
        "table5_2",
        "trace,family,k,mae_varkrr,mae_varkrr_spatial,rate",
        &csv,
    );
}
