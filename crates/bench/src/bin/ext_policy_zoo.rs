//! Extension experiment: the replacement-policy zoo on one workload —
//! Belady's OPT (lower bound), exact LRU, ARC, K-LRU, sampled LFU and
//! hyperbolic caching — with MRCs from direct simulation, plus the
//! miniature-simulation predictions §6.2 prescribes for the non-stack
//! members (ARC).
//!
//! Run: `cargo run --release -p krr-bench --bin ext_policy_zoo`

use krr_bench::{report, requests, scale, threads};
use krr_sim::arc::ArcCache;
use krr_sim::opt::opt_mrc;
use krr_sim::sampled::{HyperbolicScore, SampledCache};
use krr_sim::wtinylfu::WTinyLfuCache;
use krr_sim::{even_capacities, simulate_mrc, Cache, Capacity, KLfuCache, MiniSim, Policy, Unit};
use krr_trace::{msr, Request};

fn curve_of(
    trace: &[Request],
    caps: &[u64],
    build: impl Fn(Capacity) -> Box<dyn Cache>,
) -> krr_core::Mrc {
    let mut points = vec![(0.0, 1.0)];
    for &c in caps {
        let mut cache = build(Capacity::Objects(c));
        for r in trace {
            cache.access(r);
        }
        points.push((c as f64, cache.stats().miss_ratio()));
    }
    let mut mrc = krr_core::Mrc::from_points(points);
    mrc.make_monotone();
    mrc
}

fn main() {
    let n = requests();
    let sc = scale();
    let trace = msr::profile(msr::MsrTrace::Web).generate(n, 0x200, sc);
    let (objects, _) = krr_sim::working_set(&trace);
    let caps = even_capacities(objects, 12);
    println!(
        "ext_policy_zoo: msr_web, {} requests, {objects} objects",
        trace.len()
    );

    let opt = opt_mrc(&trace, &caps);
    let lru = simulate_mrc(&trace, Policy::ExactLru, Unit::Objects, &caps, 1, threads());
    let klru = simulate_mrc(&trace, Policy::klru(5), Unit::Objects, &caps, 2, threads());
    let klfu = curve_of(&trace, &caps, |c| Box::new(KLfuCache::new(c, 5, 3)));
    let hyper = curve_of(&trace, &caps, |c| {
        Box::new(SampledCache::new(c, 5, HyperbolicScore::default(), 4))
    });
    let arc = curve_of(&trace, &caps, |c| Box::new(ArcCache::new(c)));
    let wtlfu = curve_of(&trace, &caps, |c| Box::new(WTinyLfuCache::new(c)));
    // Miniature-simulation prediction for the non-stack policy (ARC).
    let arc_mini = {
        let mut ms = MiniSim::new(&caps, 0.2, |c| Box::new(ArcCache::new(c)), false);
        for r in &trace {
            ms.access(r);
        }
        ms.mrc()
    };

    let columns: Vec<(&str, &krr_core::Mrc)> = vec![
        ("OPT", &opt),
        ("LRU", &lru),
        ("ARC", &arc),
        ("ARC-mini", &arc_mini),
        ("K-LRU(5)", &klru),
        ("K-LFU(5)", &klfu),
        ("Hyper(5)", &hyper),
        ("W-TinyLFU", &wtlfu),
    ];
    let header: Vec<String> = std::iter::once("cache".to_string())
        .chain(columns.iter().map(|(n, _)| (*n).to_string()))
        .collect();
    let rows: Vec<Vec<String>> = caps
        .iter()
        .map(|&c| {
            std::iter::once(format!("{c}"))
                .chain(
                    columns
                        .iter()
                        .map(|(_, m)| format!("{:.3}", m.eval(c as f64))),
                )
                .collect()
        })
        .collect();
    report::print_table(
        "policy zoo — miss ratios by cache size",
        &header.iter().map(String::as_str).collect::<Vec<_>>(),
        &rows,
    );

    // Sanity relations the zoo must respect.
    let sizes: Vec<f64> = caps.iter().map(|&c| c as f64).collect();
    let mut violations = 0;
    for &s in &sizes {
        if opt.eval(s) > lru.eval(s) + 0.01 {
            violations += 1;
        }
    }
    println!("\nOPT <= LRU violations: {violations} (expect 0)");
    println!(
        "ARC miniature-simulation MAE vs full ARC: {:.5}",
        arc.mae(&arc_mini, &sizes)
    );

    let csv: Vec<String> = caps
        .iter()
        .map(|&c| {
            let vals: Vec<String> = columns
                .iter()
                .map(|(_, m)| format!("{:.5}", m.eval(c as f64)))
                .collect();
            format!("{c},{}", vals.join(","))
        })
        .collect();
    report::write_csv(
        "ext_policy_zoo",
        "cache_size,opt,lru,arc,arc_mini,klru5,klfu5,hyper5,wtinylfu",
        &csv,
    );
}
