//! Ablation (not in the paper's tables): the sizeArray base `b` (§4.4.1).
//!
//! A larger base means fewer maintained boundaries (cheaper updates) but
//! coarser interpolation for byte-level stack distances. The paper uses
//! b = 2; this sweep quantifies the accuracy/time trade-off for
//! b ∈ {2, 4, 8, 16}, plus the with/without-replacement sampling ablation
//! for the simulated ground truth.
//!
//! Run: `cargo run --release -p krr-bench --bin ablation_sizearray`

use krr_bench::{actual_mrc_bytes, report, requests, scale, timed};
use krr_core::{KrrConfig, KrrModel};
use krr_sim::{simulate_mrc, Policy, Unit};
use krr_trace::{msr, twitter};

fn main() {
    let n = requests();
    let sc = scale();
    let k = 8u32;
    let bases = [2u64, 4, 8, 16];

    let traces = vec![
        (
            "msr_rsrch".to_string(),
            msr::profile(msr::MsrTrace::Rsrch).generate_var_size(n, 1, sc),
        ),
        (
            "tw_cluster26.0".to_string(),
            twitter::profile(twitter::TwitterCluster::C26_0).generate(n, 2, sc, true),
        ),
    ];

    let mut rows = Vec::new();
    let mut csv = Vec::new();
    for (name, trace) in &traces {
        let (sim, caps) = actual_mrc_bytes(trace, k, 30, 3);
        let sizes: Vec<f64> = caps.iter().map(|&c| c as f64).collect();
        for &b in &bases {
            let (mrc, t) = timed(|| {
                let mut m = KrrModel::new(KrrConfig::new(f64::from(k)).byte_level(b, 1024).seed(4));
                for r in trace {
                    m.access(r.key, r.size);
                }
                m.mrc()
            });
            let mae = sim.mae(&mrc, &sizes);
            rows.push(vec![
                name.clone(),
                format!("{b}"),
                format!("{mae:.5}"),
                format!("{:.3}", t.as_secs_f64()),
            ]);
            csv.push(format!("{name},{b},{mae:.6},{:.4}", t.as_secs_f64()));
        }
    }
    report::print_table(
        "Ablation — sizeArray base (var-KRR, K=8)",
        &["trace", "base", "MAE", "time (s)"],
        &rows,
    );

    // Secondary ablation: with- vs without-replacement K-LRU ground truth
    // (§3's claim that both versions behave alike for small K, large C).
    let (name, trace) = &traces[0];
    let (_, bytes) = krr_sim::working_set(trace);
    let caps = krr_sim::even_capacities(bytes, 15);
    let sizes: Vec<f64> = caps.iter().map(|&c| c as f64).collect();
    let with = simulate_mrc(
        trace,
        Policy::KLru {
            k,
            with_replacement: true,
        },
        Unit::Bytes,
        &caps,
        5,
        krr_bench::threads(),
    );
    let without = simulate_mrc(
        trace,
        Policy::KLru {
            k,
            with_replacement: false,
        },
        Unit::Bytes,
        &caps,
        6,
        krr_bench::threads(),
    );
    println!(
        "\nwith- vs without-replacement K-LRU on {name}: MAE {:.5} (Proposition 1 vs 2)",
        with.mae(&without, &sizes)
    );
    report::write_csv("ablation_sizearray", "trace,base,mae,seconds", &csv);
}
