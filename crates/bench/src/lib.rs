//! # krr-bench
//!
//! Experiment harness for the paper reproduction: shared workload registry,
//! result emission, and measurement helpers used by the per-table/figure
//! binaries (`fig1_1`, `table5_1`, …). See DESIGN.md §4 for the experiment
//! index and EXPERIMENTS.md for recorded results.
//!
//! Scale knobs (environment variables):
//!
//! * `KRR_SCALE` — working-set scale factor applied to every workload
//!   (default 0.1; the paper's full-size traces are 10x larger).
//! * `KRR_REQS` — requests per trace (default 400_000).

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod microbench;
pub mod report;
pub mod workloads;

use krr_core::{even_sizes, KrrConfig, KrrModel, Mrc};
use krr_sim::{even_capacities, simulate_mrc, Policy, Unit};
use krr_trace::Request;
use std::time::{Duration, Instant};

/// Workload scale factor from `KRR_SCALE` (default 0.1).
#[must_use]
pub fn scale() -> f64 {
    std::env::var("KRR_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.1)
}

/// Requests per trace from `KRR_REQS` (default 400_000).
#[must_use]
pub fn requests() -> usize {
    std::env::var("KRR_REQS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(400_000)
}

/// Number of simulation threads (default: available parallelism).
#[must_use]
pub fn threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
}

/// The paper's default spatial sampling rate, with the ≥8K-sampled-objects
/// guard applied for a given working set.
#[must_use]
pub fn guarded_rate(base: f64, working_set: u64) -> f64 {
    krr_core::sampling::rate_for_working_set(
        base,
        working_set,
        krr_core::sampling::DEFAULT_MIN_SAMPLED_OBJECTS,
    )
}

/// Runs the KRR model over a uniform-size trace and returns its MRC.
#[must_use]
pub fn krr_mrc(trace: &[Request], k: f64, rate: f64, seed: u64) -> Mrc {
    let mut cfg = KrrConfig::new(k).seed(seed);
    if rate < 1.0 {
        cfg = cfg.sampling(rate);
    }
    let mut m = KrrModel::new(cfg);
    for r in trace {
        m.access_key(r.key);
    }
    m.mrc()
}

/// Runs the byte-level (var-KRR) model over a variable-size trace.
#[must_use]
pub fn var_krr_mrc(trace: &[Request], k: f64, rate: f64, seed: u64) -> Mrc {
    let mut cfg = KrrConfig::new(k).byte_level(2, 1024).seed(seed);
    if rate < 1.0 {
        cfg = cfg.sampling(rate);
    }
    let mut m = KrrModel::new(cfg);
    for r in trace {
        m.access(r.key, r.size);
    }
    m.mrc()
}

/// Ground-truth K-LRU MRC by multi-size simulation over `n_sizes` even
/// capacities (object granularity).
#[must_use]
pub fn actual_mrc(trace: &[Request], k: u32, n_sizes: usize, seed: u64) -> (Mrc, Vec<u64>) {
    let (objects, _) = krr_sim::working_set(trace);
    let caps = even_capacities(objects, n_sizes);
    let mrc = simulate_mrc(
        trace,
        Policy::klru(k),
        Unit::Objects,
        &caps,
        seed,
        threads(),
    );
    (mrc, caps)
}

/// Ground-truth byte-granularity K-LRU MRC.
#[must_use]
pub fn actual_mrc_bytes(trace: &[Request], k: u32, n_sizes: usize, seed: u64) -> (Mrc, Vec<u64>) {
    let (_, bytes) = krr_sim::working_set(trace);
    let caps = even_capacities(bytes, n_sizes);
    let mrc = simulate_mrc(trace, Policy::klru(k), Unit::Bytes, &caps, seed, threads());
    (mrc, caps)
}

/// MAE between two MRCs at `n` even sizes up to `max` (the paper's metric).
#[must_use]
pub fn mae_at(a: &Mrc, b: &Mrc, max: f64, n: usize) -> f64 {
    a.mae(b, &even_sizes(max, n))
}

/// Times a closure, returning (result, wall time).
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let t0 = Instant::now();
    let out = f();
    (out, t0.elapsed())
}

#[cfg(test)]
mod tests {
    use super::*;
    use krr_trace::patterns;

    #[test]
    fn helpers_roundtrip() {
        let trace = patterns::uniform_random(500, 20_000, 1);
        let (mrc, caps) = actual_mrc(&trace, 4, 8, 2);
        assert_eq!(caps.len(), 8);
        let model = krr_mrc(&trace, 4.0, 1.0, 3);
        let mae = mae_at(&mrc, &model, 500.0, 20);
        assert!(mae < 0.02, "MAE {mae}");
    }

    #[test]
    fn guarded_rate_applies_floor() {
        assert_eq!(guarded_rate(0.001, 1000), 1.0);
        assert!((guarded_rate(0.001, 100_000_000) - 0.001).abs() < 1e-12);
    }
}
