//! The evaluation workload registry (§5.2): 13 MSR profiles, YCSB C/E at
//! three Zipf exponents, and 4 Twitter clusters, in uniform-size and
//! variable-size flavours.

use krr_trace::{msr, twitter, ycsb, Trace};

/// Workload family, matching the grouping of Table 5.1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Family {
    /// MSR Cambridge-like block traces.
    Msr,
    /// YCSB core workloads.
    Ycsb,
    /// Twitter cache-cluster traces.
    Twitter,
}

impl std::fmt::Display for Family {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Family::Msr => write!(f, "MSR"),
            Family::Ycsb => write!(f, "YCSB"),
            Family::Twitter => write!(f, "Twitter"),
        }
    }
}

/// A named workload that can be materialized at a given size.
pub struct Spec {
    /// Display name (e.g. `msr_src1`, `ycsb_E_1.5`, `tw_cluster34.1`).
    pub name: String,
    /// Family grouping.
    pub family: Family,
    gen: Box<dyn Fn(usize, u64, f64, bool) -> Trace + Send + Sync>,
}

impl Spec {
    /// Materializes `n` uniform-size requests.
    #[must_use]
    pub fn generate(&self, n: usize, seed: u64, scale: f64) -> Trace {
        (self.gen)(n, seed, scale, false)
    }

    /// Materializes `n` variable-size requests (families that have a size
    /// model; YCSB stays uniform as in the paper).
    #[must_use]
    pub fn generate_var(&self, n: usize, seed: u64, scale: f64) -> Trace {
        (self.gen)(n, seed, scale, true)
    }
}

/// All 13 MSR specs.
#[must_use]
pub fn msr_specs() -> Vec<Spec> {
    msr::MsrTrace::ALL
        .iter()
        .map(|&t| Spec {
            name: format!("msr_{}", t.name()),
            family: Family::Msr,
            gen: Box::new(move |n, seed, scale, var| {
                let p = msr::profile(t);
                if var {
                    p.generate_var_size(n, seed, scale)
                } else {
                    p.generate(n, seed, scale)
                }
            }),
        })
        .collect()
}

/// YCSB C and E at α ∈ {0.5, 0.99, 1.5} (6 specs). Record counts follow the
/// scale factor.
#[must_use]
pub fn ycsb_specs() -> Vec<Spec> {
    let mut out = Vec::new();
    for &alpha in &[0.5f64, 0.99, 1.5] {
        out.push(Spec {
            name: format!("ycsb_C_{alpha}"),
            family: Family::Ycsb,
            gen: Box::new(move |n, seed, scale, _| {
                let records = ((1_000_000.0 * scale) as u64).max(1_000);
                ycsb::WorkloadC::new(records, alpha).generate(n, seed)
            }),
        });
        out.push(Spec {
            name: format!("ycsb_E_{alpha}"),
            family: Family::Ycsb,
            gen: Box::new(move |n, seed, scale, _| {
                // Workload E touches many objects per scan; a smaller record
                // count keeps request counts comparable.
                let records = ((100_000.0 * scale) as u64).max(500);
                let mut t = ycsb::WorkloadE::new(records, alpha).generate(n, seed);
                t.truncate(n);
                t
            }),
        });
    }
    out
}

/// The 4 Twitter cluster specs.
#[must_use]
pub fn twitter_specs() -> Vec<Spec> {
    twitter::TwitterCluster::ALL
        .iter()
        .map(|&c| Spec {
            name: format!("tw_{}", c.name()),
            family: Family::Twitter,
            gen: Box::new(move |n, seed, scale, var| {
                twitter::profile(c).generate(n, seed, scale, var)
            }),
        })
        .collect()
}

/// Everything, grouped as the paper groups them.
#[must_use]
pub fn all_specs() -> Vec<Spec> {
    let mut v = msr_specs();
    v.extend(ycsb_specs());
    v.extend(twitter_specs());
    v
}

/// Representative Type A / Type B traces for Fig 5.2.
#[must_use]
pub fn fig5_2_specs() -> (Vec<Spec>, Vec<Spec>) {
    let name_in = |specs: &mut Vec<Spec>, names: &[&str]| -> Vec<Spec> {
        let mut picked = Vec::new();
        specs.retain_mut(|s| {
            if names.contains(&s.name.as_str()) {
                picked.push(Spec {
                    name: s.name.clone(),
                    family: s.family,
                    gen: std::mem::replace(&mut s.gen, Box::new(|_, _, _, _| Vec::new())),
                });
                false
            } else {
                true
            }
        });
        picked
    };
    let mut all = all_specs();
    let type_a = name_in(
        &mut all,
        &[
            "ycsb_E_1.5",
            "msr_src1",
            "msr_src2",
            "msr_web",
            "msr_proj",
            "tw_cluster34.1",
        ],
    );
    let type_b = name_in(&mut all, &["msr_usr", "ycsb_C_0.99", "tw_cluster45.0"]);
    (type_a, type_b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_is_complete() {
        let all = all_specs();
        assert_eq!(all.len(), 13 + 6 + 4);
        let names: std::collections::HashSet<&str> = all.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names.len(), all.len(), "names must be unique");
    }

    #[test]
    fn specs_generate_at_small_scale() {
        for spec in all_specs() {
            let t = spec.generate(5_000, 1, 0.02);
            assert!(!t.is_empty(), "{}", spec.name);
            assert!(t.len() <= 5_000 + 2, "{} overshoots", spec.name);
        }
    }

    #[test]
    fn fig5_2_split_covers_nine_traces() {
        let (a, b) = fig5_2_specs();
        assert_eq!(a.len(), 6);
        assert_eq!(b.len(), 3);
        let t = a[0].generate(1_000, 1, 0.02);
        assert!(!t.is_empty());
    }
}
