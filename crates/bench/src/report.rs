//! Result emission: aligned stdout tables plus CSV files under `results/`.

use std::fs;
use std::io::Write;
use std::path::PathBuf;

/// Directory where experiment CSVs are written (`results/` at the repo
/// root, overridable with `KRR_RESULTS_DIR`).
#[must_use]
pub fn results_dir() -> PathBuf {
    let dir = std::env::var("KRR_RESULTS_DIR").unwrap_or_else(|_| {
        // The bench binaries run from the workspace root via `cargo run`.
        "results".to_string()
    });
    PathBuf::from(dir)
}

/// Writes a CSV file `results/<name>.csv` with the given header and rows.
pub fn write_csv(name: &str, header: &str, rows: &[String]) {
    let dir = results_dir();
    if let Err(e) = fs::create_dir_all(&dir) {
        eprintln!("warning: cannot create {}: {e}", dir.display());
        return;
    }
    let path = dir.join(format!("{name}.csv"));
    match fs::File::create(&path) {
        Ok(mut f) => {
            let _ = writeln!(f, "{header}");
            for row in rows {
                let _ = writeln!(f, "{row}");
            }
            println!("\n[wrote {}]", path.display());
        }
        Err(e) => eprintln!("warning: cannot write {}: {e}", path.display()),
    }
}

/// Prints a simple aligned table: a header row and data rows of equal arity.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n=== {title} ===");
    let ncols = header.len();
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        assert_eq!(row.len(), ncols, "row arity mismatch");
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let fmt_row = |cells: Vec<&str>| {
        cells
            .iter()
            .zip(&widths)
            .map(|(c, w)| format!("{c:>w$}", w = w))
            .collect::<Vec<_>>()
            .join("  ")
    };
    println!("{}", fmt_row(header.to_vec()));
    println!(
        "{}",
        "-".repeat(widths.iter().sum::<usize>() + 2 * (ncols - 1))
    );
    for row in rows {
        println!("{}", fmt_row(row.iter().map(String::as_str).collect()));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_printing_does_not_panic() {
        print_table(
            "demo",
            &["a", "beta"],
            &[vec!["1".into(), "2".into()], vec!["30".into(), "4".into()]],
        );
    }

    #[test]
    fn csv_roundtrip() {
        let dir = std::env::temp_dir().join("krr_report_test");
        std::env::set_var("KRR_RESULTS_DIR", &dir);
        write_csv("unit_test", "x,y", &["1,2".to_string()]);
        let body = std::fs::read_to_string(dir.join("unit_test.csv")).unwrap();
        assert_eq!(body, "x,y\n1,2\n");
        std::env::remove_var("KRR_RESULTS_DIR");
    }
}
