//! A std-only micro-benchmark harness replacing the external `criterion`
//! dependency, so the bench targets build and run with zero registry
//! access (see the hermetic-test policy in README.md).
//!
//! The statistical model is deliberately simple: each benchmark runs a
//! calibrated batch of iterations per sample, collects `samples` wall-time
//! measurements, and reports min / median / p95 nanoseconds per iteration
//! plus throughput when an element count is set. The median is robust to
//! scheduler noise, which is all a repo-internal A/B comparison (e.g. the
//! metrics-overhead gate) needs.

use std::hint::black_box;
use std::time::{Duration, Instant};

/// One benchmark's aggregated measurements, in nanoseconds per iteration.
#[derive(Debug, Clone, Copy)]
pub struct Measurement {
    /// Fastest sample.
    pub min_ns: f64,
    /// Median sample — the headline number.
    pub median_ns: f64,
    /// 95th-percentile sample.
    pub p95_ns: f64,
    /// Iterations executed per sample batch.
    pub iters_per_sample: u64,
}

impl Measurement {
    /// Elements per second at the median, given `elems` processed per
    /// iteration.
    #[must_use]
    pub fn throughput(&self, elems: u64) -> f64 {
        if self.median_ns <= 0.0 {
            return f64::INFINITY;
        }
        elems as f64 * 1e9 / self.median_ns
    }
}

/// A named group of benchmarks sharing a throughput element count, printed
/// as an aligned table as results arrive.
pub struct Suite {
    name: String,
    elems: Option<u64>,
    warmup: Duration,
    sample_time: Duration,
    samples: usize,
    results: Vec<(String, Measurement)>,
}

impl Suite {
    /// Creates a suite with the default budget (3 warmup batches, 15
    /// samples of >= 20ms each). `KRR_BENCH_FAST=1` shrinks the budget for
    /// smoke runs.
    #[must_use]
    pub fn new(name: &str) -> Self {
        let fast = std::env::var("KRR_BENCH_FAST").is_ok();
        println!("\n== {name} ==");
        Self {
            name: name.to_string(),
            elems: None,
            warmup: Duration::from_millis(if fast { 5 } else { 100 }),
            sample_time: Duration::from_millis(if fast { 5 } else { 20 }),
            samples: if fast { 5 } else { 15 },
            results: Vec::new(),
        }
    }

    /// Sets the per-iteration element count used for throughput reporting.
    pub fn throughput(&mut self, elems: u64) -> &mut Self {
        self.elems = Some(elems);
        self
    }

    /// Runs one benchmark: `f` is a full iteration; its return value is
    /// black-boxed so the optimizer cannot delete the work.
    pub fn bench<T>(&mut self, label: &str, mut f: impl FnMut() -> T) -> Measurement {
        // Calibrate: how many iterations fill one sample window?
        let mut iters = 1u64;
        loop {
            let t0 = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            let dt = t0.elapsed();
            if dt >= self.sample_time || iters >= 1 << 30 {
                break;
            }
            // Aim slightly past the window to converge in few rounds.
            let target = self.sample_time.as_secs_f64() * 1.2;
            let per = (dt.as_secs_f64() / iters as f64).max(1e-12);
            iters = ((target / per).ceil() as u64).clamp(iters + 1, iters.saturating_mul(100));
        }
        // Warmup, then measure.
        let t0 = Instant::now();
        while t0.elapsed() < self.warmup {
            black_box(f());
        }
        let mut per_iter: Vec<f64> = (0..self.samples)
            .map(|_| {
                let t0 = Instant::now();
                for _ in 0..iters {
                    black_box(f());
                }
                t0.elapsed().as_secs_f64() * 1e9 / iters as f64
            })
            .collect();
        per_iter.sort_by(f64::total_cmp);
        let m = Measurement {
            min_ns: per_iter[0],
            median_ns: per_iter[per_iter.len() / 2],
            p95_ns: per_iter[(per_iter.len() * 95 / 100).min(per_iter.len() - 1)],
            iters_per_sample: iters,
        };
        let tp = match self.elems {
            Some(e) => format!("  {:>10.2} Melem/s", m.throughput(e) / 1e6),
            None => String::new(),
        };
        println!(
            "{:<40} {:>12.1} ns/iter  (min {:>10.1}, p95 {:>12.1}){tp}",
            format!("{}/{label}", self.name),
            m.median_ns,
            m.min_ns,
            m.p95_ns
        );
        self.results.push((label.to_string(), m));
        m
    }

    /// Returns the measurement recorded under `label`, if any.
    #[must_use]
    pub fn get(&self, label: &str) -> Option<Measurement> {
        self.results
            .iter()
            .find(|(l, _)| l == label)
            .map(|&(_, m)| m)
    }

    /// Finishes the suite (prints a terminating newline for readability).
    pub fn finish(&self) {
        println!();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something_positive() {
        std::env::set_var("KRR_BENCH_FAST", "1");
        let mut s = Suite::new("selftest");
        let m = s.bench("sum", || (0..1000u64).sum::<u64>());
        assert!(m.median_ns > 0.0);
        assert!(m.min_ns <= m.median_ns && m.median_ns <= m.p95_ns);
        assert!(s.get("sum").is_some());
        s.finish();
    }

    #[test]
    fn throughput_scales_with_elems() {
        let m = Measurement {
            min_ns: 1.0,
            median_ns: 100.0,
            p95_ns: 200.0,
            iters_per_sample: 1,
        };
        assert!((m.throughput(100) - 1e9).abs() < 1e-3);
    }
}
