//! Criterion: per-access cost of the three stack-update strategies across K
//! and stack depth M — the micro-benchmark behind Table 5.3 / Fig 5.4.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use krr_core::rng::Xoshiro256;
use krr_core::update::{swap_chain, UpdaterKind};
use krr_core::{KrrConfig, KrrModel, UpdaterKind as UK};
use std::hint::black_box;

/// Raw swap-chain generation at a fixed stack distance.
fn bench_swap_chain(c: &mut Criterion) {
    let mut g = c.benchmark_group("swap_chain");
    for &phi in &[1u64 << 10, 1 << 16, 1 << 20] {
        for &k in &[1.0f64, 5.0, 16.0] {
            for kind in [UpdaterKind::TopDown, UpdaterKind::Backward] {
                g.bench_with_input(
                    BenchmarkId::new(format!("{kind}/K={k}"), phi),
                    &phi,
                    |b, &phi| {
                        let mut rng = Xoshiro256::seed_from_u64(1);
                        let mut out = Vec::with_capacity(1024);
                        b.iter(|| {
                            out.clear();
                            swap_chain(kind, black_box(phi), k, &mut rng, &mut out);
                            black_box(out.len())
                        });
                    },
                );
            }
            // The naive scan is only feasible at the small depth.
            if phi <= 1 << 10 {
                g.bench_with_input(
                    BenchmarkId::new(format!("naive/K={k}"), phi),
                    &phi,
                    |b, &phi| {
                        let mut rng = Xoshiro256::seed_from_u64(1);
                        let mut out = Vec::with_capacity(1024);
                        b.iter(|| {
                            out.clear();
                            swap_chain(UpdaterKind::Naive, black_box(phi), k, &mut rng, &mut out);
                            black_box(out.len())
                        });
                    },
                );
            }
        }
    }
    g.finish();
}

/// Whole-model throughput (lookup + chain + apply + histogram) on a Zipf
/// stream, per updater.
fn bench_model_throughput(c: &mut Criterion) {
    let keys = 100_000u64;
    let trace: Vec<u64> = {
        let z = krr_trace::Zipf::new(keys, 0.9);
        let mut rng = Xoshiro256::seed_from_u64(3);
        (0..200_000).map(|_| z.sample(&mut rng)).collect()
    };
    let mut g = c.benchmark_group("model_throughput");
    g.throughput(Throughput::Elements(trace.len() as u64));
    for updater in [UK::TopDown, UK::Backward] {
        for &k in &[1.0f64, 5.0, 16.0] {
            g.bench_function(format!("{updater}/K={k}"), |b| {
                b.iter(|| {
                    let mut m = KrrModel::new(KrrConfig::new(k).raw_k().updater(updater).seed(4));
                    for &key in &trace {
                        m.access_key(key);
                    }
                    black_box(m.histogram().total())
                });
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench_swap_chain, bench_model_throughput);
criterion_main!(benches);
