//! Per-access cost of the three stack-update strategies across K and stack
//! depth M — the micro-benchmark behind Table 5.3 / Fig 5.4 — plus the
//! metrics-overhead check: whole-model throughput with the observability
//! layer off vs on must stay within a few percent.
//!
//! Pass `--metrics` to also dump the instrumented run's metrics snapshot.

use krr_bench::microbench::Suite;
use krr_core::metrics::MetricsRegistry;
use krr_core::rng::Xoshiro256;
use krr_core::update::{swap_chain, UpdaterKind};
use krr_core::{KrrConfig, KrrModel};
use std::hint::black_box;
use std::sync::Arc;

fn bench_swap_chain(suite: &mut Suite) {
    for &phi in &[1u64 << 10, 1 << 16, 1 << 20] {
        for &k in &[1.0f64, 5.0, 16.0] {
            let mut kinds = vec![UpdaterKind::TopDown, UpdaterKind::Backward];
            // The naive scan is only feasible at the small depth.
            if phi <= 1 << 10 {
                kinds.push(UpdaterKind::Naive);
            }
            for kind in kinds {
                let mut rng = Xoshiro256::seed_from_u64(1);
                let mut out = Vec::with_capacity(1024);
                suite.bench(&format!("swap_chain/{kind}/K={k}/phi={phi}"), || {
                    out.clear();
                    swap_chain(kind, black_box(phi), k, &mut rng, &mut out);
                    out.len()
                });
            }
        }
    }
}

fn model_trace() -> Vec<u64> {
    let z = krr_trace::Zipf::new(100_000, 0.9);
    let mut rng = Xoshiro256::seed_from_u64(3);
    (0..200_000).map(|_| z.sample(&mut rng)).collect()
}

fn bench_model_throughput(suite: &mut Suite, trace: &[u64]) {
    suite.throughput(trace.len() as u64);
    for updater in [UpdaterKind::TopDown, UpdaterKind::Backward] {
        for &k in &[1.0f64, 5.0, 16.0] {
            suite.bench(&format!("model/{updater}/K={k}"), || {
                let mut m = KrrModel::new(KrrConfig::new(k).raw_k().updater(updater).seed(4));
                for &key in trace {
                    m.access_key(key);
                }
                m.histogram().total()
            });
        }
    }
}

/// The ≤5% acceptance check: identical model runs, metrics detached vs
/// attached. Returns the overhead of the instrumented run in percent.
fn bench_metrics_overhead(suite: &mut Suite, trace: &[u64], dump: bool) -> f64 {
    suite.throughput(trace.len() as u64);
    let run = |registry: Option<Arc<MetricsRegistry>>| {
        let mut m = KrrModel::new(KrrConfig::new(5.0).seed(4));
        if let Some(reg) = registry {
            m.set_metrics(reg);
        }
        for &key in trace {
            m.access_key(key);
        }
        m.histogram().total()
    };
    let off = suite.bench("model/metrics=off/K=5", || run(None));
    let registry = Arc::new(MetricsRegistry::new());
    let reg = Arc::clone(&registry);
    let on = suite.bench("model/metrics=on/K=5", move || run(Some(Arc::clone(&reg))));
    let overhead = (on.median_ns / off.median_ns - 1.0) * 100.0;
    println!(
        "metrics overhead: {overhead:+.2}% (median {} -> {} ns)",
        off.median_ns, on.median_ns
    );
    if dump {
        println!("{}", registry.snapshot().render_info());
    }
    overhead
}

fn main() {
    let dump_metrics = std::env::args().any(|a| a == "--metrics");
    let mut suite = Suite::new("stack_update");
    bench_swap_chain(&mut suite);
    let trace = model_trace();
    bench_model_throughput(&mut suite, &trace);
    bench_metrics_overhead(&mut suite, &trace, dump_metrics);
    suite.finish();
}
