//! Criterion: end-to-end one-pass profiler throughput — KRR (±spatial) vs
//! the exact-LRU baselines (Olken, SHARDS, AET) — the comparison behind
//! Table 5.4.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use krr_baselines::{Aet, OlkenLru, Shards};
use krr_core::{KrrConfig, KrrModel};
use std::hint::black_box;

fn traces() -> Vec<u64> {
    let z = krr_trace::Zipf::new(200_000, 0.99);
    let mut rng = krr_core::rng::Xoshiro256::seed_from_u64(7);
    (0..300_000).map(|_| z.sample(&mut rng)).collect()
}

fn bench_profilers(c: &mut Criterion) {
    let trace = traces();
    let mut g = c.benchmark_group("profilers");
    g.throughput(Throughput::Elements(trace.len() as u64));
    g.sample_size(10);

    g.bench_function("krr_backward_k5", |b| {
        b.iter(|| {
            let mut m = KrrModel::new(KrrConfig::new(5.0).seed(1));
            for &k in &trace {
                m.access_key(k);
            }
            black_box(m.histogram().total())
        });
    });
    g.bench_function("krr_backward_k5_spatial_0.05", |b| {
        b.iter(|| {
            let mut m = KrrModel::new(KrrConfig::new(5.0).sampling(0.05).seed(2));
            for &k in &trace {
                m.access_key(k);
            }
            black_box(m.histogram().total())
        });
    });
    g.bench_function("olken", |b| {
        b.iter(|| {
            let mut o = OlkenLru::new();
            for &k in &trace {
                o.access_key(k);
            }
            black_box(o.distinct())
        });
    });
    g.bench_function("shards_0.05", |b| {
        b.iter(|| {
            let mut s = Shards::new(0.05);
            for &k in &trace {
                s.access_key(k);
            }
            black_box(s.counts())
        });
    });
    g.bench_function("aet", |b| {
        b.iter(|| {
            let mut a = Aet::with_bin_width(16);
            for &k in &trace {
                a.access_key(k);
            }
            black_box(a.distinct())
        });
    });
    g.finish();
}

criterion_group!(benches, bench_profilers);
criterion_main!(benches);
