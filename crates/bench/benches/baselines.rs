//! End-to-end one-pass profiler throughput — KRR (±spatial) vs the
//! exact-LRU baselines (Olken, SHARDS, AET) — the comparison behind
//! Table 5.4. Gated behind the `bench-ext` feature (long-running).
//!
//! Pass `--metrics` to also dump the KRR run's metrics snapshot.

use krr_baselines::{Aet, OlkenLru, Shards};
use krr_bench::microbench::Suite;
use krr_core::metrics::MetricsRegistry;
use krr_core::{KrrConfig, KrrModel};
use std::sync::Arc;

fn trace() -> Vec<u64> {
    let z = krr_trace::Zipf::new(200_000, 0.99);
    let mut rng = krr_core::rng::Xoshiro256::seed_from_u64(7);
    (0..300_000).map(|_| z.sample(&mut rng)).collect()
}

fn main() {
    let dump_metrics = std::env::args().any(|a| a == "--metrics");
    let registry = dump_metrics.then(|| Arc::new(MetricsRegistry::new()));
    let trace = trace();
    let mut suite = Suite::new("profilers");
    suite.throughput(trace.len() as u64);

    suite.bench("krr_backward_k5", || {
        let mut m = KrrModel::new(KrrConfig::new(5.0).seed(1));
        if let Some(reg) = &registry {
            m.set_metrics(Arc::clone(reg));
        }
        for &k in &trace {
            m.access_key(k);
        }
        m.histogram().total()
    });
    suite.bench("krr_backward_k5_spatial_0.05", || {
        let mut m = KrrModel::new(KrrConfig::new(5.0).sampling(0.05).seed(2));
        for &k in &trace {
            m.access_key(k);
        }
        m.histogram().total()
    });
    suite.bench("olken", || {
        let mut o = OlkenLru::new();
        for &k in &trace {
            o.access_key(k);
        }
        o.distinct()
    });
    suite.bench("shards_0.05", || {
        let mut s = Shards::new(0.05);
        for &k in &trace {
            s.access_key(k);
        }
        s.counts().0
    });
    suite.bench("aet", || {
        let mut a = Aet::with_bin_width(16);
        for &k in &trace {
            a.access_key(k);
        }
        a.distinct()
    });
    suite.finish();
    if let Some(reg) = &registry {
        println!("{}", reg.snapshot().render_info());
    }
}
