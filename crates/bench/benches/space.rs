//! Space gate for the paper's §5.7 claim: at M ≈ 10⁶ objects, KRR's deep
//! heap footprint (stack + key index at the SHARDS-comparable sampling
//! rate) is far below an unsampled Olken tree and in the same decade as
//! SHARDS itself. Also gates the exposition server: scraping `/metrics`
//! continuously during a multi-threaded pipeline run must cost < 5%.
//! Writes `BENCH_space.json` at the repo root for CI perf tracking
//! (`KRR_CI_BENCH=1` in scripts/ci.sh).

use krr_baselines::{CounterStacks, OlkenLru, Shards, ShardsMax};
use krr_core::expo::{http_get, ExpoServer, ExpoSources};
use krr_core::footprint::Footprint;
use krr_core::rng::Xoshiro256;
use krr_core::sharded::ShardedKrr;
use krr_core::{KrrConfig, MetricsRegistry};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

const M: u64 = 1_000_000;
const REQUESTS: usize = 2_000_000;
const SAMPLING_RATE: f64 = 0.01;
const OVERHEAD_LIMIT_PCT: f64 = 5.0;

fn run_pipeline(refs: &[(u64, u32)], reg: &Arc<MetricsRegistry>) -> usize {
    let mut bank = ShardedKrr::new(&KrrConfig::new(5.0).seed(4), 4);
    bank.set_metrics(Arc::clone(reg));
    bank.process_stream(refs.iter().copied(), 2);
    bank.mrc().points().len()
}

fn main() {
    let zipf = krr_trace::Zipf::new(M, 0.8);
    let mut rng = Xoshiro256::seed_from_u64(7);
    let trace: Vec<u64> = (0..REQUESTS).map(|_| zipf.sample(&mut rng)).collect();

    // ---- space: profile the same trace with every technique ------------
    let mut krr = ShardedKrr::new(&KrrConfig::new(5.0).sampling(SAMPLING_RATE).seed(1), 4);
    krr.process_stream(trace.iter().map(|&k| (k, 1)), 2);
    let mut krr_full = ShardedKrr::new(&KrrConfig::new(5.0).seed(1), 4);
    krr_full.process_stream(trace.iter().map(|&k| (k, 1)), 2);

    let mut olken = OlkenLru::new();
    let mut shards = Shards::new(SAMPLING_RATE);
    let mut shards_max = ShardsMax::new(8 << 10);
    let mut cstacks = CounterStacks::new(50_000, 10, 0.02);
    for &k in &trace {
        olken.access_key(k);
        shards.access_key(k);
        shards_max.access_key(k);
        cstacks.access_key(k);
    }

    let krr_bytes = krr.deep_bytes();
    let krr_full_bytes = krr_full.deep_bytes();
    let olken_bytes = olken.deep_bytes();
    let shards_bytes = shards.deep_bytes();
    let shards_max_bytes = shards_max.deep_bytes();
    let cstacks_bytes = cstacks.deep_bytes();

    println!("\n== space (M = {M}, {REQUESTS} requests, Zipf 0.8) ==");
    let rows: &[(&str, usize)] = &[
        ("krr (R=0.01, 4 shards)", krr_bytes),
        ("krr (unsampled, 4 shards)", krr_full_bytes),
        ("olken (unsampled)", olken_bytes),
        ("shards (R=0.01)", shards_bytes),
        ("shards_max (s_max=8192)", shards_max_bytes),
        ("counterstacks", cstacks_bytes),
    ];
    for (name, bytes) in rows {
        println!(
            "  {name:<28} {bytes:>12} B  ({:>8.4}x olken)",
            *bytes as f64 / olken_bytes as f64
        );
    }

    // ---- time: scraping /metrics during a live pipeline run ------------
    //
    // Interleaved A/B: run-to-run drift on a loaded (possibly single-core)
    // CI box can exceed the 5% budget on its own, so quiet and scraped
    // iterations alternate and each pair shares whatever the machine was
    // doing at that moment; medians over the two alternating sets compare
    // only the scraping cost.
    let refs: Vec<(u64, u32)> = trace[..200_000].iter().map(|&k| (k, 1)).collect();
    let reg = Arc::new(MetricsRegistry::new());

    let server = ExpoServer::start(
        "127.0.0.1:0",
        ExpoSources {
            metrics: Some(Arc::clone(&reg)),
            ..ExpoSources::default()
        },
    )
    .expect("bind exposition server");
    let addr = server.addr();
    let stop = Arc::new(AtomicBool::new(false));
    let active = Arc::new(AtomicBool::new(false));
    let (scraper_stop, scraper_active) = (Arc::clone(&stop), Arc::clone(&active));
    let scraper = std::thread::spawn(move || {
        let mut scrapes = 0u64;
        while !scraper_stop.load(Ordering::Acquire) {
            if scraper_active.load(Ordering::Acquire) {
                let (status, _, body) = http_get(addr, "/metrics").expect("scrape");
                assert_eq!(status, 200);
                assert!(body.ends_with("# EOF\n"));
                scrapes += 1;
            }
            // An aggressive agent: ~100 Hz, three orders of magnitude past
            // Prometheus' default 1/15 Hz. The scraper shares cores with
            // the pipeline, so render cost is a straight CPU tax — the
            // rate is the overhead knob.
            std::thread::sleep(std::time::Duration::from_millis(10));
        }
        scrapes
    });

    let rounds = if std::env::var("KRR_BENCH_FAST").is_ok() {
        3
    } else {
        7
    };
    let mut quiet_ns = Vec::new();
    let mut scraped_ns = Vec::new();
    run_pipeline(&refs, &reg); // warm-up, not recorded
    for _ in 0..rounds {
        for scraping in [false, true] {
            active.store(scraping, Ordering::Release);
            let t0 = std::time::Instant::now();
            run_pipeline(&refs, &reg);
            let ns = t0.elapsed().as_nanos() as f64;
            if scraping {
                &mut scraped_ns
            } else {
                &mut quiet_ns
            }
            .push(ns);
        }
    }
    active.store(false, Ordering::Release);
    stop.store(true, Ordering::Release);
    let scrapes = scraper.join().expect("scraper thread");
    drop(server);

    let median = |v: &mut Vec<f64>| {
        v.sort_by(f64::total_cmp);
        v[v.len() / 2]
    };
    let (quiet, scraped) = (median(&mut quiet_ns), median(&mut scraped_ns));
    let overhead = (scraped / quiet - 1.0) * 100.0;
    println!(
        "\n== space: scrape overhead ==\n\
         pipeline/scrape=off    {quiet:>14.0} ns/iter (median of {rounds})\n\
         pipeline/scrape=100Hz  {scraped:>14.0} ns/iter (median of {rounds})\n\
         scrape overhead: {overhead:+.2}% over {scrapes} scrapes (limit {OVERHEAD_LIMIT_PCT}%)"
    );

    let mut json = String::from("{\"schema\":\"krr-bench-space-v1\",");
    let _ = write!(
        json,
        "\"m\":{M},\"requests\":{REQUESTS},\"sampling_rate\":{SAMPLING_RATE},\
         \"krr_bytes\":{krr_bytes},\"krr_unsampled_bytes\":{krr_full_bytes},\
         \"olken_bytes\":{olken_bytes},\"shards_bytes\":{shards_bytes},\
         \"shards_max_bytes\":{shards_max_bytes},\"counterstacks_bytes\":{cstacks_bytes},\
         \"scrape_off_ns\":{quiet:.1},\"scrape_on_ns\":{scraped:.1},\
         \"scrape_overhead_pct\":{overhead:.3},\"overhead_limit_pct\":{OVERHEAD_LIMIT_PCT}}}"
    );
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_space.json");
    std::fs::write(out, &json).expect("write BENCH_space.json");
    println!("wrote {out}\n");

    assert!(
        krr_bytes < olken_bytes,
        "KRR at R={SAMPLING_RATE} ({krr_bytes} B) must be far below unsampled Olken ({olken_bytes} B)"
    );
    assert!(
        krr_full_bytes < olken_bytes,
        "even unsampled KRR ({krr_full_bytes} B) should undercut Olken ({olken_bytes} B)"
    );
    assert!(
        overhead < OVERHEAD_LIMIT_PCT,
        "scrape overhead {overhead:.2}% exceeds the {OVERHEAD_LIMIT_PCT}% budget"
    );
}
