//! Tracing-overhead gate for the flight recorder: identical stack-update
//! workloads with the recorder detached vs attached must stay within 5%
//! of each other, since the recorder samples spans 1-in-16 and a disabled
//! recorder compiles down to a branch on `None`. Also measures the raw
//! cost of one `record()` (four relaxed atomic stores) and of draining a
//! full ring to Chrome JSON, and writes `BENCH_obs.json` at the repo root
//! for CI perf tracking (`KRR_CI_BENCH=1` in scripts/ci.sh).

use krr_bench::microbench::Suite;
use krr_core::obs::{FlightRecorder, Phase};
use krr_core::rng::Xoshiro256;
use krr_core::{KrrConfig, KrrModel};
use std::fmt::Write as _;

const OVERHEAD_LIMIT_PCT: f64 = 5.0;

fn model_trace() -> Vec<u64> {
    let z = krr_trace::Zipf::new(100_000, 0.9);
    let mut rng = Xoshiro256::seed_from_u64(3);
    (0..200_000).map(|_| z.sample(&mut rng)).collect()
}

/// One full model pass; the recorder (when present) traces the same
/// stack updates `krr --trace-out` would.
fn run_model(trace: &[u64], recorder: Option<&FlightRecorder>) -> u64 {
    let mut m = KrrModel::new(KrrConfig::new(5.0).seed(4));
    if let Some(rec) = recorder {
        m.set_recorder(rec.register("bench-model"));
    }
    for &key in trace {
        m.access_key(key);
    }
    m.histogram().total()
}

fn main() {
    let mut suite = Suite::new("obs");
    let trace = model_trace();
    suite.throughput(trace.len() as u64);

    let off = suite.bench("model/recorder=off/K=5", || run_model(&trace, None));
    let recorder = FlightRecorder::new();
    let on = suite.bench("model/recorder=on/K=5", || {
        run_model(&trace, Some(&recorder))
    });
    let overhead = (on.median_ns / off.median_ns - 1.0) * 100.0;
    println!(
        "tracing overhead: {overhead:+.2}% (median {:.0} -> {:.0} ns, limit {OVERHEAD_LIMIT_PCT}%)",
        off.median_ns, on.median_ns
    );

    // Raw recorder primitives, for the numbers in DESIGN.md §11.
    suite.throughput(1);
    let ring = FlightRecorder::new();
    let rec = ring.register("raw");
    let mut arg = 0u64;
    let record = suite.bench("record/span", || {
        arg = arg.wrapping_add(1);
        rec.record(Phase::StackUpdate, arg, 17, arg);
    });
    let drain = suite.bench("drain/chrome_json", || ring.chrome_trace_json().len());
    suite.finish();

    let mut json = String::from("{\"schema\":\"krr-bench-obs-v1\",");
    let _ = write!(
        json,
        "\"refs\":{},\"recorder_off_ns\":{:.1},\"recorder_on_ns\":{:.1},\
         \"overhead_pct\":{overhead:.3},\"overhead_limit_pct\":{OVERHEAD_LIMIT_PCT},\
         \"record_span_ns\":{:.1},\"drain_full_ring_ns\":{:.1}}}",
        trace.len(),
        off.median_ns,
        on.median_ns,
        record.median_ns,
        drain.median_ns,
    );
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_obs.json");
    std::fs::write(out, &json).expect("write BENCH_obs.json");
    println!("wrote {out}\n");

    assert!(
        overhead < OVERHEAD_LIMIT_PCT,
        "flight-recorder overhead {overhead:.2}% exceeds the {OVERHEAD_LIMIT_PCT}% budget"
    );
}
