//! Forensics-overhead gate: the always-on tail forensics (request-id
//! allocation, p99 exemplar sampling, phase profiler) must cost less
//! than 3% of RESP p99 versus a recorder-only baseline (`CONFIG SET
//! forensics off` on an otherwise identical profiled server), and must
//! leave the MRC bit-identical.
//!
//! Measurement is paired, not side-by-side: one long zipfian GET stream
//! runs against a single live server while `CONFIG SET forensics`
//! toggles every 500 requests, and each chunk's client-observed
//! latencies land in its mode's pool. Both pools therefore share the
//! same server warmth, the same evolving store, and — because scheduler
//! hiccups fall into chunks of either mode with equal probability — the
//! same noise floor, so the pooled-p99 delta isolates the forensics
//! cost itself. (Two fresh-server runs compared side by side swing
//! ±10% pass to pass from scheduling alone; the paired design does
//! not.) MRC bit-identity is checked separately on two fresh servers,
//! one per mode. Writes `BENCH_doctor.json` at the repo root for CI
//! perf tracking (`KRR_CI_BENCH=1` in scripts/ci.sh); the artifact is
//! validated against its own `krr-bench-doctor-v1` schema before it
//! lands — the bench eats the doctor's food first.

use krr_core::doctor::validate_artifact;
use krr_core::json::parse;
use krr_core::KrrConfig;
use krr_redis::resp::Value;
use krr_redis::{Client, MiniRedis, Server};
use krr_trace::ycsb;
use std::fmt::Write as _;
use std::time::Instant;

const OVERHEAD_LIMIT_PCT: f64 = 3.0;
/// Absolute slack: sequential loopback round-trips have p99s in the
/// tens of microseconds, where a couple of microseconds of scheduling
/// jitter already reads as several percent.
const P99_SLACK_NS: f64 = 150_000.0;
const CHUNK: usize = 500;

fn new_server() -> (Server, Client) {
    let mut store = MiniRedis::new(1_000_000, 5, 11);
    store.enable_mrc_profiling(&KrrConfig::new(5.0).seed(7), 2);
    let server = Server::start(store).expect("loopback server");
    let client = Client::connect(server.addr()).expect("loopback client");
    (server, client)
}

fn set_forensics(client: &mut Client, on: bool) {
    let arg: &[u8] = if on { b"on" } else { b"off" };
    let reply = client
        .raw(&[b"CONFIG", b"SET", b"forensics", arg])
        .expect("toggle forensics");
    assert!(matches!(&reply, Value::Simple(s) if s == "OK"));
}

fn p99(lat: &mut [u64]) -> f64 {
    lat.sort_unstable();
    lat[(lat.len() * 99) / 100] as f64
}

/// One full run per mode on a fresh server: the bit-identity check.
fn mrc_side(forensics_on: bool, trace: &[krr_trace::Request]) -> String {
    let (mut server, mut client) = new_server();
    if !forensics_on {
        set_forensics(&mut client, false);
    }
    for r in trace {
        let _ = client.access(r.key, r.size.max(1)).expect("access");
    }
    let csv = client.mrc().expect("mrc");
    server.shutdown();
    csv
}

fn main() {
    let trace = ycsb::WorkloadC::new(2_000, 0.9).generate(120_000, 13);

    // The hard invariant first: forensics on/off must not move the MRC.
    let mrc_on = mrc_side(true, &trace[..30_000]);
    let mrc_off = mrc_side(false, &trace[..30_000]);
    assert!(mrc_on.lines().count() > 1, "MRC has no data: {mrc_on:?}");
    assert_eq!(mrc_on, mrc_off, "forensics changed the model's MRC");

    // Paired overhead measurement on one live server.
    let (mut server, mut client) = new_server();
    for r in &trace[..8_000] {
        // Discarded warm-up: page faults, lazy init, TCP stack.
        let _ = client.access(r.key, r.size.max(1)).expect("access");
    }
    let mut pool_on: Vec<u64> = Vec::new();
    let mut pool_off: Vec<u64> = Vec::new();
    for (i, chunk) in trace[8_000..].chunks(CHUNK).enumerate() {
        let on = i % 2 == 0;
        set_forensics(&mut client, on);
        let pool = if on { &mut pool_on } else { &mut pool_off };
        for r in chunk {
            let t0 = Instant::now();
            let _ = client.access(r.key, r.size.max(1)).expect("access");
            pool.push(t0.elapsed().as_nanos() as u64);
        }
    }
    server.shutdown();

    let requests = pool_on.len() + pool_off.len();
    let (base_p99, forensics_p99) = (p99(&mut pool_off), p99(&mut pool_on));
    let overhead = (forensics_p99 / base_p99 - 1.0) * 100.0;
    println!(
        "forensics tail cost: p99 {overhead:+.2}% (baseline {base_p99:.0}ns -> \
         forensics {forensics_p99:.0}ns over {requests} paired requests, \
         budget {OVERHEAD_LIMIT_PCT}% or {P99_SLACK_NS:.0}ns absolute)"
    );

    let mut json = String::from("{\"schema\":\"krr-bench-doctor-v1\",");
    let _ = write!(
        json,
        "\"requests\":{requests},\"chunk\":{CHUNK},\
         \"p99_baseline_ns\":{base_p99:.1},\"p99_forensics_ns\":{forensics_p99:.1},\
         \"overhead_pct\":{overhead:.3},\"overhead_limit_pct\":{OVERHEAD_LIMIT_PCT},\
         \"p99_slack_ns\":{P99_SLACK_NS},\"mrc_identical\":true}}",
    );
    let doc = parse(&json).expect("artifact is valid JSON");
    let schema = validate_artifact(&doc).expect("artifact passes its own schema");
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_doctor.json");
    std::fs::write(out, &json).expect("write BENCH_doctor.json");
    println!("wrote {out} ({schema})\n");

    assert!(
        overhead < OVERHEAD_LIMIT_PCT || forensics_p99 - base_p99 < P99_SLACK_NS,
        "forensics p99 cost {overhead:+.2}% exceeds the {OVERHEAD_LIMIT_PCT}% budget \
         (baseline {base_p99:.0}ns -> forensics {forensics_p99:.0}ns)"
    );
}
