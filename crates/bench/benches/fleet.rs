//! Fleet gate: 1000+ tenants hosted in one process, per-tenant `/mrc`
//! and labeled aggregate `/metrics` served live, with two budgets held:
//! scraping the labeled aggregate at ~100 Hz during a fleet run must cost
//! < 5% (the same budget the single-model space gate enforces), and each
//! tenant's deep-accounted resident bytes must stay within 2× of the
//! analytic [`KrrModel::memory_bytes`] footprint prediction. Writes
//! `BENCH_fleet.json` at the repo root for CI perf tracking
//! (`KRR_CI_BENCH=1` in scripts/ci.sh).

use krr_core::expo::{http_get, ExpoServer, ExpoSources};
use krr_core::fleet::{FleetArena, FleetCell, FleetConfig};
use krr_core::rng::Xoshiro256;
use krr_core::{KrrConfig, MetricsRegistry};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

const TENANTS: u64 = 1_200;
const KEYS: u64 = 600_000;
const REQUESTS: usize = 1_000_000;
const OVERHEAD_LIMIT_PCT: f64 = 5.0;
const FOOTPRINT_LIMIT_X: f64 = 2.0;

/// One fleet pass over the shared trace: fresh arena (deterministic
/// per-tenant seeds), parallel route-once processing, rows published so
/// the concurrent scraper renders live labeled series.
fn run_fleet(refs: &[(u64, u64, u32)], reg: &Arc<MetricsRegistry>) -> FleetArena {
    let mut arena = FleetArena::new(FleetConfig::new(KrrConfig::new(5.0).seed(4)));
    arena.set_metrics(Arc::clone(reg));
    arena.process_parallel(refs, 2);
    arena.publish_metrics();
    arena
}

fn main() {
    let zipf = krr_trace::Zipf::new(KEYS, 0.9);
    let mut rng = Xoshiro256::seed_from_u64(11);
    let refs: Vec<(u64, u64, u32)> = (0..REQUESTS)
        .map(|_| {
            let k = zipf.sample(&mut rng);
            (k % TENANTS, k, 1)
        })
        .collect();

    let reg = Arc::new(MetricsRegistry::new());
    let cell = Arc::new(FleetCell::new());
    let server = ExpoServer::start(
        "127.0.0.1:0",
        ExpoSources {
            metrics: Some(Arc::clone(&reg)),
            tenants: Some(Arc::clone(&cell)),
            ..ExpoSources::default()
        },
    )
    .expect("bind exposition server");
    let addr = server.addr();

    // Warm-up pass (not timed) — kept alive as the footprint specimen and
    // the served fleet view.
    let arena = run_fleet(&refs, &reg);
    cell.publish(arena.view());
    let hosted = arena.len() as u64;

    // The full serving surface, live: labeled aggregate scrape plus one
    // tenant curve, before any timing starts.
    let (status, _, metrics) = http_get(addr, "/metrics").expect("scrape /metrics");
    assert_eq!(status, 200);
    let labeled_series = metrics.matches("krr_tenant_refs_total{tenant=\"").count() as u64;
    let (status, _, _) = http_get(addr, "/tenants").expect("scrape /tenants");
    assert_eq!(status, 200);
    let (status, _, _) = http_get(addr, "/mrc?tenant=0&format=csv").expect("tenant curve");
    assert_eq!(status, 200);

    // ---- space: deep-accounted resident bytes vs the analytic estimate --
    let rows = arena.summary();
    let total_bytes: u64 = rows.iter().map(|r| r.resident_bytes).sum();
    let mean_bytes = total_bytes / hosted.max(1);
    let mut worst_ratio = 0f64;
    for row in &rows {
        let model = arena.tenant_model(row.id).expect("hosted tenant");
        let predicted = model.memory_bytes() as f64;
        let measured = row.resident_bytes as f64;
        let ratio = if predicted > 0.0 {
            measured / predicted
        } else {
            f64::INFINITY
        };
        worst_ratio = worst_ratio.max(ratio.max(1.0 / ratio));
    }

    println!("\n== fleet ({TENANTS} tenants, {REQUESTS} requests, Zipf 0.9) ==");
    println!("  hosted tenants            {hosted}");
    println!("  labeled /metrics series   {labeled_series}");
    println!("  resident bytes (total)    {total_bytes}");
    println!("  resident bytes (mean)     {mean_bytes}");
    println!("  worst measured/predicted  {worst_ratio:.3}x (limit {FOOTPRINT_LIMIT_X}x)");

    // ---- time: aggregate /metrics scraping during fleet runs ------------
    //
    // Same interleaved A/B discipline as the space gate: quiet and scraped
    // iterations alternate so run-to-run machine drift cancels; medians
    // over each alternating set isolate the labeled-render scrape tax.
    let stop = Arc::new(AtomicBool::new(false));
    let active = Arc::new(AtomicBool::new(false));
    let (scraper_stop, scraper_active) = (Arc::clone(&stop), Arc::clone(&active));
    let scraper = std::thread::spawn(move || {
        let mut scrapes = 0u64;
        while !scraper_stop.load(Ordering::Acquire) {
            if scraper_active.load(Ordering::Acquire) {
                let (status, _, body) = http_get(addr, "/metrics").expect("scrape");
                assert_eq!(status, 200);
                assert!(body.ends_with("# EOF\n"));
                scrapes += 1;
            }
            // ~25 Hz. The labeled document is ~6 series per tenant —
            // three orders of magnitude more bytes per scrape than the
            // single-model gate's — so this moves comparable render
            // bytes/sec to that gate's 100 Hz while still scraping ~375x
            // faster than Prometheus' default 1/15 Hz cadence.
            std::thread::sleep(std::time::Duration::from_millis(40));
        }
        scrapes
    });

    let rounds = if std::env::var("KRR_BENCH_FAST").is_ok() {
        3
    } else {
        7
    };
    let mut quiet_ns = Vec::new();
    let mut scraped_ns = Vec::new();
    for _ in 0..rounds {
        for scraping in [false, true] {
            active.store(scraping, Ordering::Release);
            let t0 = std::time::Instant::now();
            run_fleet(&refs, &reg);
            let ns = t0.elapsed().as_nanos() as f64;
            if scraping {
                &mut scraped_ns
            } else {
                &mut quiet_ns
            }
            .push(ns);
        }
    }
    active.store(false, Ordering::Release);
    stop.store(true, Ordering::Release);
    let scrapes = scraper.join().expect("scraper thread");
    drop(server);

    let median = |v: &mut Vec<f64>| {
        v.sort_by(f64::total_cmp);
        v[v.len() / 2]
    };
    let (quiet, scraped) = (median(&mut quiet_ns), median(&mut scraped_ns));
    let overhead = (scraped / quiet - 1.0) * 100.0;
    println!(
        "\n== fleet: scrape overhead ==\n\
         fleet/scrape=off    {quiet:>14.0} ns/iter (median of {rounds})\n\
         fleet/scrape=25Hz   {scraped:>14.0} ns/iter (median of {rounds})\n\
         scrape overhead: {overhead:+.2}% over {scrapes} scrapes (limit {OVERHEAD_LIMIT_PCT}%)"
    );

    let mut json = String::from("{\"schema\":\"krr-bench-fleet-v1\",");
    let _ = write!(
        json,
        "\"tenants\":{hosted},\"requests\":{REQUESTS},\"keys\":{KEYS},\
         \"labeled_series\":{labeled_series},\
         \"resident_bytes_total\":{total_bytes},\"resident_bytes_mean\":{mean_bytes},\
         \"footprint_worst_ratio\":{worst_ratio:.4},\"footprint_limit_x\":{FOOTPRINT_LIMIT_X},\
         \"scrape_off_ns\":{quiet:.1},\"scrape_on_ns\":{scraped:.1},\
         \"scrape_overhead_pct\":{overhead:.3},\"overhead_limit_pct\":{OVERHEAD_LIMIT_PCT}}}"
    );
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_fleet.json");
    std::fs::write(out, &json).expect("write BENCH_fleet.json");
    println!("wrote {out}\n");

    assert!(
        hosted >= 1_000,
        "fleet gate needs 1000+ tenants in one process, hosted {hosted}"
    );
    assert_eq!(
        labeled_series, hosted,
        "every hosted tenant must render a labeled /metrics series"
    );
    assert!(
        worst_ratio <= FOOTPRINT_LIMIT_X,
        "per-tenant resident bytes drifted {worst_ratio:.2}x from the \
         footprint prediction (limit {FOOTPRINT_LIMIT_X}x)"
    );
    assert!(
        overhead < OVERHEAD_LIMIT_PCT,
        "scrape overhead {overhead:.2}% exceeds the {OVERHEAD_LIMIT_PCT}% budget"
    );
}
