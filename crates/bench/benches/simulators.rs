//! Criterion: cache-simulator throughput — exact LRU vs K-LRU (per K) vs
//! mini-Redis — the substrate cost behind every "actual MRC" in §5.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use krr_redis::{MiniRedis, SamplingMode};
use krr_sim::{Cache, Capacity, ExactLru, KLruCache};
use krr_trace::Request;
use std::hint::black_box;

fn trace() -> Vec<Request> {
    let z = krr_trace::Zipf::new(100_000, 0.99);
    let mut rng = krr_core::rng::Xoshiro256::seed_from_u64(9);
    (0..200_000).map(|_| Request::get(z.sample(&mut rng), 200)).collect()
}

fn bench_caches(c: &mut Criterion) {
    let reqs = trace();
    let cap_objects = 20_000u64;
    let cap_bytes = cap_objects * 200;
    let mut g = c.benchmark_group("simulators");
    g.throughput(Throughput::Elements(reqs.len() as u64));
    g.sample_size(10);

    g.bench_function("exact_lru", |b| {
        b.iter(|| {
            let mut cache = ExactLru::new(Capacity::Objects(cap_objects));
            for r in &reqs {
                black_box(cache.access(r));
            }
            cache.stats().hits
        });
    });
    for k in [1u32, 5, 16] {
        g.bench_function(format!("klru_k{k}"), |b| {
            b.iter(|| {
                let mut cache = KLruCache::new(Capacity::Objects(cap_objects), k, 3);
                for r in &reqs {
                    black_box(cache.access(r));
                }
                cache.stats().hits
            });
        });
    }
    for (name, mode) in [
        ("mini_redis_clustered", SamplingMode::ClusteredWalk),
        ("mini_redis_uniform", SamplingMode::UniformRandom),
    ] {
        g.bench_function(name, |b| {
            b.iter(|| {
                let mut store = MiniRedis::with_mode(cap_bytes, 5, mode, 4);
                for r in &reqs {
                    black_box(store.access(r));
                }
                store.stats().hits
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_caches);
criterion_main!(benches);
