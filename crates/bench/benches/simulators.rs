//! Cache-simulator throughput — exact LRU vs K-LRU (per K) vs mini-Redis —
//! the substrate cost behind every "actual MRC" in §5. Gated behind the
//! `bench-ext` feature (long-running).
//!
//! Pass `--metrics` to also dump eviction metrics from the instrumented
//! K-LRU and mini-Redis runs.

use krr_bench::microbench::Suite;
use krr_core::metrics::MetricsRegistry;
use krr_redis::{MiniRedis, SamplingMode};
use krr_sim::{Cache, Capacity, ExactLru, KLruCache};
use krr_trace::Request;
use std::sync::Arc;

fn trace() -> Vec<Request> {
    let z = krr_trace::Zipf::new(100_000, 0.99);
    let mut rng = krr_core::rng::Xoshiro256::seed_from_u64(9);
    (0..200_000)
        .map(|_| Request::get(z.sample(&mut rng), 200))
        .collect()
}

fn main() {
    let dump_metrics = std::env::args().any(|a| a == "--metrics");
    let registry = dump_metrics.then(|| Arc::new(MetricsRegistry::new()));
    let reqs = trace();
    let cap_objects = 20_000u64;
    let cap_bytes = cap_objects * 200;
    let mut suite = Suite::new("simulators");
    suite.throughput(reqs.len() as u64);

    suite.bench("exact_lru", || {
        let mut cache = ExactLru::new(Capacity::Objects(cap_objects));
        for r in &reqs {
            cache.access(r);
        }
        cache.stats().hits
    });
    for k in [1u32, 5, 16] {
        suite.bench(&format!("klru_k{k}"), || {
            let mut cache = KLruCache::new(Capacity::Objects(cap_objects), k, 3);
            if let Some(reg) = &registry {
                cache.set_metrics(Arc::clone(reg));
            }
            for r in &reqs {
                cache.access(r);
            }
            cache.stats().hits
        });
    }
    let mut last_store_metrics = None;
    for (name, mode) in [
        ("mini_redis_clustered", SamplingMode::ClusteredWalk),
        ("mini_redis_uniform", SamplingMode::UniformRandom),
    ] {
        suite.bench(name, || {
            let mut store = MiniRedis::with_mode(cap_bytes, 5, mode, 4);
            for r in &reqs {
                store.access(r);
            }
            let hits = store.stats().hits;
            if dump_metrics {
                last_store_metrics = Some(store.metrics().snapshot());
            }
            hits
        });
    }
    suite.finish();
    if let Some(reg) = &registry {
        println!(
            "# klru (aggregated over all K)\n{}",
            reg.snapshot().render_info()
        );
    }
    if let Some(snap) = &last_store_metrics {
        println!("# mini-redis (last run)\n{}", snap.render_info());
    }
}
