//! A/B benchmark for the parallel profiling paths: sequential access loop
//! vs the legacy scan-everything-per-thread `process_parallel_rescan` vs
//! the streaming route-once `process_stream` pipeline, over a 1/2/4/8
//! thread scaling curve.
//!
//! Writes machine-readable results to `BENCH_pipeline.json` at the repo
//! root (schema `krr-bench-pipeline-v1`) so the perf trajectory is tracked
//! across PRs. `KRR_BENCH_FAST=1` shrinks the trace for smoke runs.
//!
//! Besides timing, the run asserts the two correctness claims the numbers
//! rest on: bit-identical MRCs across all paths and thread counts, and
//! route-once hashing (pipeline hashes N keys total; rescan hashes T×N).

use krr_core::metrics::MetricsRegistry;
use krr_core::rng::Xoshiro256;
use krr_core::sharded::ShardedKrr;
use krr_core::KrrConfig;
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

const SHARDS: usize = 16;
const THREADS: [usize; 4] = [1, 2, 4, 8];
const REPS: usize = 3;

fn trace(n: usize) -> Vec<(u64, u32)> {
    let z = krr_trace::Zipf::new(100_000, 0.9);
    let mut rng = Xoshiro256::seed_from_u64(3);
    (0..n).map(|_| (z.sample(&mut rng), 1)).collect()
}

/// Best-of-REPS wall time for one full profiling run.
fn time_best(mut run: impl FnMut() -> ShardedKrr) -> (f64, ShardedKrr) {
    let mut best = f64::INFINITY;
    let mut bank = None;
    for _ in 0..REPS {
        let t0 = Instant::now();
        let b = run();
        best = best.min(t0.elapsed().as_secs_f64());
        bank = Some(b);
    }
    (best, bank.expect("at least one rep"))
}

struct Row {
    path: &'static str,
    threads: usize,
    secs: f64,
    refs_per_sec: f64,
}

fn main() {
    let fast = std::env::var("KRR_BENCH_FAST").is_ok();
    let n = if fast { 40_000 } else { 400_000 };
    let refs = trace(n);
    let cfg = KrrConfig::new(5.0).seed(7);
    println!("\n== pipeline ==  ({n} refs, {SHARDS} shards, best of {REPS})");

    let mut rows: Vec<Row> = Vec::new();
    let mut record = |path: &'static str, threads: usize, secs: f64| {
        let rps = n as f64 / secs;
        println!(
            "{path:<12} threads={threads}  {secs:>8.4} s  {:>10.2} Mref/s",
            rps / 1e6
        );
        rows.push(Row {
            path,
            threads,
            secs,
            refs_per_sec: rps,
        });
    };

    // Golden: the sequential sharded loop.
    let (t_seq, seq) = time_best(|| {
        let mut bank = ShardedKrr::new(&cfg, SHARDS);
        for &(k, s) in &refs {
            bank.access(k, s);
        }
        bank
    });
    record("sequential", 1, t_seq);
    let golden = seq.mrc();

    for threads in THREADS {
        let (t_old, old) = time_best(|| {
            let mut bank = ShardedKrr::new(&cfg, SHARDS);
            bank.process_parallel_rescan(&refs, threads);
            bank
        });
        assert_eq!(
            old.mrc().points(),
            golden.points(),
            "rescan diverged at threads={threads}"
        );
        record("rescan", threads, t_old);

        let (t_new, new) = time_best(|| {
            let mut bank = ShardedKrr::new(&cfg, SHARDS);
            bank.process_stream(refs.iter().copied(), threads);
            bank
        });
        assert_eq!(
            new.mrc().points(),
            golden.points(),
            "pipeline diverged at threads={threads}"
        );
        record("pipeline", threads, t_new);
    }

    // Route-once accounting: N hashes for the pipeline, T×N for rescan.
    let count_hashes = |f: &dyn Fn(&mut ShardedKrr)| {
        let reg = Arc::new(MetricsRegistry::new());
        let mut bank = ShardedKrr::new(&cfg, SHARDS);
        bank.set_metrics(Arc::clone(&reg));
        f(&mut bank);
        reg.snapshot().pipeline_keys_hashed
    };
    let pipeline_hashes = count_hashes(&|b| b.process_stream(refs.iter().copied(), 4));
    let rescan_hashes = count_hashes(&|b| b.process_parallel_rescan(&refs, 4));
    assert_eq!(
        pipeline_hashes, n as u64,
        "pipeline must hash each key once"
    );
    assert_eq!(rescan_hashes, 4 * n as u64, "rescan hashes T×N");
    println!("keys hashed @4 threads: pipeline {pipeline_hashes}, rescan {rescan_hashes}");

    let speedup_at = |threads: usize| {
        let get = |path: &str| {
            rows.iter()
                .find(|r| r.path == path && r.threads == threads)
                .expect("row recorded")
                .secs
        };
        get("rescan") / get("pipeline")
    };
    for threads in THREADS {
        println!(
            "pipeline speedup over rescan @{threads} threads: {:.2}x",
            speedup_at(threads)
        );
    }

    let mut json = String::from("{\"schema\":\"krr-bench-pipeline-v1\",");
    let _ = write!(
        json,
        "\"refs\":{n},\"shards\":{SHARDS},\"reps\":{REPS},\"keys_hashed\":{{\"pipeline_t4\":{pipeline_hashes},\"rescan_t4\":{rescan_hashes}}},\"results\":["
    );
    for (i, r) in rows.iter().enumerate() {
        if i > 0 {
            json.push(',');
        }
        let _ = write!(
            json,
            "{{\"path\":\"{}\",\"threads\":{},\"seconds\":{:.6},\"refs_per_sec\":{:.0}}}",
            r.path, r.threads, r.secs, r.refs_per_sec
        );
    }
    let _ = write!(json, "],\"speedup_vs_rescan\":{{");
    for (i, threads) in THREADS.iter().enumerate() {
        if i > 0 {
            json.push(',');
        }
        let _ = write!(json, "\"t{threads}\":{:.3}", speedup_at(*threads));
    }
    json.push_str("}}");
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_pipeline.json");
    std::fs::write(out, &json).expect("write BENCH_pipeline.json");
    println!("wrote {out}\n");
}
