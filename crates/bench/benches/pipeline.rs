//! A/B benchmark for the parallel profiling paths: sequential access loop
//! vs the legacy scan-everything-per-thread `process_parallel_rescan` vs
//! the PR 6-era bounded-channel pipeline (`process_stream_channels`) vs
//! the lock-free SPSC ring + batched hot-path `process_stream` pipeline,
//! over a 1/2/4/8 thread scaling curve.
//!
//! Writes machine-readable results to `BENCH_pipeline.json` at the repo
//! root (schema `krr-bench-pipeline-v2`) so the perf trajectory is tracked
//! across PRs. `KRR_BENCH_FAST=1` shrinks the trace for smoke runs.
//!
//! Besides timing, the run asserts the claims the numbers rest on:
//! bit-identical MRCs across all paths at 1/2/4/8/16 threads, route-once
//! hashing (pipeline hashes N keys total; rescan hashes T×N), a
//! near-stall-free router at the 8-thread tuning, and — in full mode —
//! the ring pipeline beating the PR 6 channel pipeline's recorded
//! 8-thread throughput by at least 1.5×.

use krr_core::metrics::MetricsRegistry;
use krr_core::rng::Xoshiro256;
use krr_core::sharded::ShardedKrr;
use krr_core::KrrConfig;
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

const SHARDS: usize = 16;
const THREADS: [usize; 4] = [1, 2, 4, 8];
const REPS: usize = 3;

/// The 8-thread full-mode (400K-ref) `refs_per_sec` measured for the
/// PR 6 channel pipeline at its merge commit (`5d32c6a`, rebuilt in a
/// worktree on this hardware) — the fixed baseline for the ring
/// pipeline's ≥1.5× acceptance gate. The PR 6 *committed* artifact was a
/// fast-mode (40K-ref) run at 784,945 refs/s; gating full-mode against
/// fast-mode would compare different traces, so the full-mode
/// measurement is the honest yardstick.
const PR6_CHANNEL_T8_RPS: f64 = 646_188.0;
const GATE_SPEEDUP: f64 = 1.5;

fn trace(n: usize) -> Vec<(u64, u32)> {
    let z = krr_trace::Zipf::new(100_000, 0.9);
    let mut rng = Xoshiro256::seed_from_u64(3);
    (0..n).map(|_| (z.sample(&mut rng), 1)).collect()
}

/// Best-of-REPS wall time for one full profiling run.
fn time_best(mut run: impl FnMut() -> ShardedKrr) -> (f64, ShardedKrr) {
    let mut best = f64::INFINITY;
    let mut bank = None;
    for _ in 0..REPS {
        let t0 = Instant::now();
        let b = run();
        best = best.min(t0.elapsed().as_secs_f64());
        bank = Some(b);
    }
    (best, bank.expect("at least one rep"))
}

struct Row {
    path: &'static str,
    threads: usize,
    secs: f64,
    refs_per_sec: f64,
}

fn main() {
    let fast = std::env::var("KRR_BENCH_FAST").is_ok();
    let n = if fast { 40_000 } else { 400_000 };
    let refs = trace(n);
    let cfg = KrrConfig::new(5.0).seed(7);
    println!("\n== pipeline ==  ({n} refs, {SHARDS} shards, best of {REPS})");

    let mut rows: Vec<Row> = Vec::new();
    let mut record = |path: &'static str, threads: usize, secs: f64| {
        let rps = n as f64 / secs;
        println!(
            "{path:<12} threads={threads}  {secs:>8.4} s  {:>10.2} Mref/s",
            rps / 1e6
        );
        rows.push(Row {
            path,
            threads,
            secs,
            refs_per_sec: rps,
        });
    };

    // Golden: the sequential sharded loop.
    let (t_seq, seq) = time_best(|| {
        let mut bank = ShardedKrr::new(&cfg, SHARDS);
        for &(k, s) in &refs {
            bank.access(k, s);
        }
        bank
    });
    record("sequential", 1, t_seq);
    let golden = seq.mrc();

    for threads in THREADS {
        let (t_old, old) = time_best(|| {
            let mut bank = ShardedKrr::new(&cfg, SHARDS);
            bank.process_parallel_rescan(&refs, threads);
            bank
        });
        assert_eq!(
            old.mrc().points(),
            golden.points(),
            "rescan diverged at threads={threads}"
        );
        record("rescan", threads, t_old);

        let (t_ch, ch) = time_best(|| {
            let mut bank = ShardedKrr::new(&cfg, SHARDS);
            bank.process_stream_channels(refs.iter().copied(), threads);
            bank
        });
        assert_eq!(
            ch.mrc().points(),
            golden.points(),
            "channel pipeline diverged at threads={threads}"
        );
        record("channels", threads, t_ch);

        let (t_new, new) = time_best(|| {
            let mut bank = ShardedKrr::new(&cfg, SHARDS);
            bank.process_stream(refs.iter().copied(), threads);
            bank
        });
        assert_eq!(
            new.mrc().points(),
            golden.points(),
            "pipeline diverged at threads={threads}"
        );
        record("pipeline", threads, t_new);
    }

    // Bit-identity holds past the timing curve: 16 workers, more threads
    // than a 1-per-shard assignment can use.
    let mut t16 = ShardedKrr::new(&cfg, SHARDS);
    t16.process_stream(refs.iter().copied(), 16);
    assert_eq!(
        t16.mrc().points(),
        golden.points(),
        "pipeline diverged at threads=16"
    );

    // Route-once accounting (N hashes for the pipeline, T×N for rescan)
    // and the ring-transport health counters at the 8-thread tuning.
    let count_hashes = |f: &dyn Fn(&mut ShardedKrr)| {
        let reg = Arc::new(MetricsRegistry::new());
        let mut bank = ShardedKrr::new(&cfg, SHARDS);
        bank.set_metrics(Arc::clone(&reg));
        f(&mut bank);
        (reg.snapshot().pipeline_keys_hashed, reg)
    };
    let (pipeline_hashes, _) = count_hashes(&|b| b.process_stream(refs.iter().copied(), 4));
    let (rescan_hashes, _) = count_hashes(&|b| b.process_parallel_rescan(&refs, 4));
    assert_eq!(
        pipeline_hashes, n as u64,
        "pipeline must hash each key once"
    );
    assert_eq!(rescan_hashes, 4 * n as u64, "rescan hashes T×N");
    println!("keys hashed @4 threads: pipeline {pipeline_hashes}, rescan {rescan_hashes}");

    let (_, reg_t8) = count_hashes(&|b| b.process_stream(refs.iter().copied(), 8));
    let snap = reg_t8.snapshot();
    let (stalls, batches) = (snap.pipeline_stalls, snap.pipeline_batches);
    println!(
        "ring @8 threads: batches {batches}, stalls {stalls}, wraps {}, router parks {}, worker parks {}",
        snap.pipeline_ring_wraps, snap.pipeline_router_parks, snap.pipeline_worker_parks
    );
    // The for_threads(8) tuning exists precisely so the router is not the
    // bottleneck: a stall on more than 2% of batches fails the run.
    assert!(
        stalls * 50 <= batches,
        "router stalling at tuned config: {stalls} stalls / {batches} batches"
    );

    let rps_of = |path: &str, threads: usize| {
        rows.iter()
            .find(|r| r.path == path && r.threads == threads)
            .expect("row recorded")
            .refs_per_sec
    };
    for threads in THREADS {
        println!(
            "pipeline speedup over channels @{threads} threads: {:.2}x (over rescan {:.2}x)",
            rps_of("pipeline", threads) / rps_of("channels", threads),
            rps_of("pipeline", threads) / rps_of("rescan", threads),
        );
    }

    // Acceptance gate: ring pipeline vs the PR 6 channel pipeline's
    // committed 8-thread number. Fast mode still reports the ratio but
    // doesn't gate on it (the 40K-ref trace is noise-dominated).
    let t8_rps = rps_of("pipeline", 8);
    let gate_ratio = t8_rps / PR6_CHANNEL_T8_RPS;
    println!(
        "gate: pipeline t8 {t8_rps:.0} refs/s = {gate_ratio:.2}x PR6 channel t8 ({PR6_CHANNEL_T8_RPS:.0})"
    );
    if !fast {
        assert!(
            gate_ratio >= GATE_SPEEDUP,
            "ring pipeline gate failed: {gate_ratio:.2}x < {GATE_SPEEDUP}x over PR6 channel t8"
        );
    }

    let mut json = String::from("{\"schema\":\"krr-bench-pipeline-v2\",");
    let _ = write!(
        json,
        "\"refs\":{n},\"shards\":{SHARDS},\"reps\":{REPS},\"keys_hashed\":{{\"pipeline_t4\":{pipeline_hashes},\"rescan_t4\":{rescan_hashes}}},"
    );
    let _ = write!(
        json,
        "\"ring_t8\":{{\"batches\":{batches},\"stalls\":{stalls},\"wraps\":{},\"router_parks\":{},\"worker_parks\":{},\"depth_hwm\":{:?}}},",
        snap.pipeline_ring_wraps,
        snap.pipeline_router_parks,
        snap.pipeline_worker_parks,
        snap.pipeline_ring_hwm
    );
    let _ = write!(
        json,
        "\"gate\":{{\"pr6_channel_t8_rps\":{PR6_CHANNEL_T8_RPS:.0},\"required\":{GATE_SPEEDUP},\"ratio\":{gate_ratio:.3},\"enforced\":{}}},\"results\":[",
        !fast
    );
    for (i, r) in rows.iter().enumerate() {
        if i > 0 {
            json.push(',');
        }
        let _ = write!(
            json,
            "{{\"path\":\"{}\",\"threads\":{},\"seconds\":{:.6},\"refs_per_sec\":{:.0}}}",
            r.path, r.threads, r.secs, r.refs_per_sec
        );
    }
    let _ = write!(json, "],\"speedup_vs_channels\":{{");
    for (i, threads) in THREADS.iter().enumerate() {
        if i > 0 {
            json.push(',');
        }
        let _ = write!(
            json,
            "\"t{threads}\":{:.3}",
            rps_of("pipeline", *threads) / rps_of("channels", *threads)
        );
    }
    json.push_str("}}");
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_pipeline.json");
    std::fs::write(out, &json).expect("write BENCH_pipeline.json");
    println!("wrote {out}\n");
}
