//! Tail-latency gate for the observability stack under real RESP load:
//! the same seeded schedule is replayed against a mini-Redis with MRC
//! profiling + live `/metrics` scraping off and then on, and the p99
//! delta must stay inside the budget. Writes `BENCH_load.json` (the full
//! `krr-load-v1` document of the profiled side, A/B section included) at
//! the repo root for CI perf tracking (`KRR_CI_BENCH=1` in scripts/ci.sh).

use krr_load::{run_ab, AbConfig, Arrival, LoadConfig, Schedule};
use krr_trace::ycsb;

const P99_LIMIT_PCT: f64 = 10.0;
/// Absolute slack: loopback p99s jitter by tens of microseconds from
/// scheduling noise alone, so a tiny absolute delta passes even when a
/// sub-millisecond baseline makes its relative form look large.
const P99_SLACK_NS: f64 = 250_000.0;

fn main() {
    // Read-heavy zipfian keys: GETs exercise the profiled sampling path,
    // the working set overflows maxmemory enough to keep eviction live.
    let trace = ycsb::WorkloadC::new(2_000, 0.9).generate(40_000, 11);
    let schedule = Schedule::generate(Arrival::Poisson, 20_000.0, trace.len(), 42);
    let load = LoadConfig {
        connections: 4,
        pipeline_depth: 32,
        ..LoadConfig::default()
    };
    let ab = AbConfig {
        limit_pct: P99_LIMIT_PCT,
        ..AbConfig::default()
    };

    // Discarded warm-up: the process's first server+client pair pays
    // one-time costs (page faults, lazy init, TCP stack warm-up) that
    // would otherwise land entirely on the profiling-off side.
    let warm = Schedule::generate(Arrival::Constant, 20_000.0, 4_000, 7);
    run_ab(&warm, &trace[..4_000], &load, &ab).expect("warm-up run");

    // One retry: a single descheduling hiccup on a loaded CI box can blow
    // one side's p99; a genuine regression reproduces on the second pass.
    let mut report = run_ab(&schedule, &trace, &load, &ab).expect("A/B load run");
    let passes = |r: &krr_load::LoadReport| {
        r.ab.delta_pct < P99_LIMIT_PCT || r.ab.on_p99_ns - r.ab.off_p99_ns < P99_SLACK_NS
    };
    if !passes(&report) {
        eprintln!(
            "first pass over budget ({:+.2}%), retrying once",
            report.ab.delta_pct
        );
        report = run_ab(&schedule, &trace, &load, &ab).expect("A/B load run (retry)");
    }

    print!("{}", report.render_text());
    println!(
        "observability tail cost: p99 {:+.2}% (off {:.0}µs -> on {:.0}µs, \
         budget {P99_LIMIT_PCT}% or {:.0}µs absolute)",
        report.ab.delta_pct,
        report.ab.off_p99_ns / 1e3,
        report.ab.on_p99_ns / 1e3,
        P99_SLACK_NS / 1e3,
    );

    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_load.json");
    std::fs::write(out, report.to_json()).expect("write BENCH_load.json");
    println!("wrote {out}\n");

    assert_eq!(report.errors, 0, "profiled side saw errors: {report:?}");
    assert!(
        passes(&report),
        "observability p99 cost {:+.2}% exceeds the {P99_LIMIT_PCT}% budget \
         (off {:.0}ns -> on {:.0}ns, absolute slack {P99_SLACK_NS}ns)",
        report.ab.delta_pct,
        report.ab.off_p99_ns,
        report.ab.on_p99_ns,
    );
}
