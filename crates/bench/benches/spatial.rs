//! Criterion: effect of the spatial sampling rate on profiler cost (§2.4,
//! §5.5) — cost should fall roughly linearly in R.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use krr_core::{KrrConfig, KrrModel};
use std::hint::black_box;

fn bench_rates(c: &mut Criterion) {
    let z = krr_trace::Zipf::new(500_000, 0.9);
    let mut rng = krr_core::rng::Xoshiro256::seed_from_u64(11);
    let trace: Vec<u64> = (0..400_000).map(|_| z.sample(&mut rng)).collect();

    let mut g = c.benchmark_group("spatial_rate");
    g.throughput(Throughput::Elements(trace.len() as u64));
    g.sample_size(10);
    for &rate in &[1.0f64, 0.1, 0.01, 0.001] {
        g.bench_with_input(BenchmarkId::from_parameter(rate), &rate, |b, &rate| {
            b.iter(|| {
                let mut cfg = KrrConfig::new(5.0).seed(5);
                if rate < 1.0 {
                    cfg = cfg.sampling(rate);
                }
                let mut m = KrrModel::new(cfg);
                for &k in &trace {
                    m.access_key(k);
                }
                black_box(m.stats().sampled)
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_rates);
criterion_main!(benches);
