//! Effect of the spatial sampling rate on profiler cost (§2.4, §5.5) —
//! cost should fall roughly linearly in R. Gated behind the `bench-ext`
//! feature (long-running).
//!
//! Pass `--metrics` to also dump the instrumented runs' snapshot (the
//! `spatial_rejected` counter shows the filter doing the work).

use krr_bench::microbench::Suite;
use krr_core::metrics::MetricsRegistry;
use krr_core::{KrrConfig, KrrModel};
use std::sync::Arc;

fn main() {
    let dump_metrics = std::env::args().any(|a| a == "--metrics");
    let registry = dump_metrics.then(|| Arc::new(MetricsRegistry::new()));
    let z = krr_trace::Zipf::new(500_000, 0.9);
    let mut rng = krr_core::rng::Xoshiro256::seed_from_u64(11);
    let trace: Vec<u64> = (0..400_000).map(|_| z.sample(&mut rng)).collect();

    let mut suite = Suite::new("spatial_rate");
    suite.throughput(trace.len() as u64);
    for &rate in &[1.0f64, 0.1, 0.01, 0.001] {
        suite.bench(&format!("rate={rate}"), || {
            let mut cfg = KrrConfig::new(5.0).seed(5);
            if rate < 1.0 {
                cfg = cfg.sampling(rate);
            }
            let mut m = KrrModel::new(cfg);
            if let Some(reg) = &registry {
                m.set_metrics(Arc::clone(reg));
            }
            for &k in &trace {
                m.access_key(k);
            }
            m.stats().sampled
        });
    }
    suite.finish();
    if let Some(reg) = &registry {
        println!("{}", reg.snapshot().render_info());
    }
}
